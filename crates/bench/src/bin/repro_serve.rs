//! Seeded service soak: drives the multi-tenant job runtime through
//! preemption, admission storms, deadline failures, and (with `--chaos`)
//! an injected-fault campaign, then audits the ledger.
//!
//! Legs:
//!
//! 1. **Bitwise preemption probe** (fault plane idle): a probe job runs
//!    uninterrupted on one runtime, then again on a fresh runtime where a
//!    high-priority job preempts it mid-run. The preempted-then-resumed
//!    trajectory must match the uninterrupted one bit for bit.
//! 2. **Admission storm + deadline storm** (`--soak`): a worker-less
//!    runtime checks the admission arithmetic exactly (quota, capacity,
//!    over-deadline, invalid specs); an executing runtime then fails
//!    nanosecond-budget jobs with typed deadline errors while unbounded
//!    siblings complete.
//! 3. **Chaos** (`--chaos`): worker kills, stragglers, and SCF faults are
//!    injected under a seeded plan while every tenant's jobs run; the
//!    supervisor must requeue or fail each victim and the campaign ledger
//!    must balance.
//!
//! Invariants (exit 0 iff all hold): no lost jobs (every admitted job
//! terminal and recorded), no quota or capacity violation at any peak,
//! typed rejections only, preempted jobs resume bitwise, and
//! `injected <= recovered + aborted` in the fault ledger. On failure the
//! full ledger audit is printed.
//!
//! Usage: `repro_serve [--soak] [--chaos] [--seed N] [--tenants N] [--jobs N]`
//!
//! Exit codes: 0 = all invariants hold, 1 = an invariant failed,
//! 2 = bad arguments.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use mqmd_bench::row;
use mqmd_serve::{Admission, JobSpec, JobState, RejectReason, ServiceConfig, ServiceRuntime};
use mqmd_util::faults::{self, FaultKind, FaultPlan, Site};
use mqmd_util::{events, Xoshiro256pp};

fn usage() -> ! {
    eprintln!("usage: repro_serve [--soak] [--chaos] [--seed N] [--tenants N] [--jobs N]");
    std::process::exit(2);
}

fn parse_u64(args: &mut std::env::Args, flag: &str) -> u64 {
    match args.next().map(|v| v.parse::<u64>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("error: {flag} needs a non-negative integer");
            std::process::exit(2);
        }
    }
}

fn tmp(leg: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mqmd_serve_soak_{leg}_{}", std::process::id()))
}

fn service_config(leg: &str, seed: u64) -> ServiceConfig {
    let dir = tmp(leg);
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = ServiceConfig::new(dir);
    cfg.seed = seed;
    cfg
}

fn probe_spec() -> JobSpec {
    JobSpec {
        steps: 3,
        ..Default::default()
    }
}

/// Blocks until `id` is running, so a follow-up higher-priority submit
/// finds the worker busy and must preempt.
fn wait_until_running(rt: &ServiceRuntime, id: u64, violations: &mut Vec<String>) -> bool {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = rt.ledger().records[&id].state.clone();
        if matches!(state, JobState::Running) {
            return true;
        }
        if state.is_terminal() || Instant::now() >= deadline {
            violations.push(format!(
                "probe job {id} reached {} before it could be preempted",
                state.label()
            ));
            return false;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Leg 1: the headline property — preempt, shed, resume, bit-for-bit.
fn preemption_probe(seed: u64, violations: &mut Vec<String>) {
    let rt = ServiceRuntime::start(service_config("probe_ref", seed)).expect("runtime");
    let id = rt.submit(probe_spec()).id().expect("probe admitted");
    let ledger = rt.shutdown();
    let JobState::Completed(reference) = ledger.records[&id].state.clone() else {
        violations.push(format!(
            "uninterrupted probe failed: {:?}",
            ledger.records[&id].state
        ));
        return;
    };

    let rt = ServiceRuntime::start(service_config("probe_preempt", seed)).expect("runtime");
    let id = rt.submit(probe_spec()).id().expect("probe admitted");
    if !wait_until_running(&rt, id, violations) {
        rt.shutdown();
        return;
    }
    let vip = JobSpec {
        tenant: 1,
        priority: 9,
        steps: 1,
        ..Default::default()
    };
    let vip_id = rt.submit(vip).id().expect("vip admitted");
    let ledger = rt.shutdown();

    if ledger.preemptions < 1 {
        violations.push("the high-priority job never preempted the probe".into());
    }
    if !matches!(ledger.records[&vip_id].state, JobState::Completed(_)) {
        violations.push(format!(
            "preemptor failed: {:?}",
            ledger.records[&vip_id].state
        ));
    }
    match ledger.records[&id].state.clone() {
        JobState::Completed(got) => {
            let pos_ok = got
                .positions
                .iter()
                .zip(&reference.positions)
                .all(|(a, b)| {
                    a.x.to_bits() == b.x.to_bits()
                        && a.y.to_bits() == b.y.to_bits()
                        && a.z.to_bits() == b.z.to_bits()
                });
            let vel_ok = got
                .velocities
                .iter()
                .zip(&reference.velocities)
                .all(|(a, b)| {
                    a.x.to_bits() == b.x.to_bits()
                        && a.y.to_bits() == b.y.to_bits()
                        && a.z.to_bits() == b.z.to_bits()
                });
            let e_ok = bitwise_eq(&got.energies, &reference.energies);
            if pos_ok && vel_ok && e_ok {
                println!(
                    "probe leg: preempted {} time(s), resumed {}, trajectory bitwise \
                     ({} energies match)",
                    ledger.preemptions,
                    ledger.resumes,
                    got.energies.len()
                );
            } else {
                violations.push(format!(
                    "preempted probe diverged from uninterrupted run \
                     (positions {pos_ok}, velocities {vel_ok}, energies {e_ok})"
                ));
            }
        }
        other => violations.push(format!("preempted probe failed: {other:?}")),
    }
    audit_into("probe", &ledger, 4, 16, violations);
}

/// Leg 2a: exact admission arithmetic on a worker-less runtime.
fn admission_storm(seed: u64, tenants: u64, violations: &mut Vec<String>) {
    let mut cfg = service_config("admission", seed);
    cfg.workers = 0;
    cfg.tenant_quota = 2;
    cfg.queue_capacity = (tenants.max(1) * 2) as usize - 1;
    let quota = cfg.tenant_quota as u64;
    let capacity = cfg.queue_capacity as u64;
    let rt = ServiceRuntime::start(cfg).expect("runtime");

    let mut accepted = 0u64;
    let mut by_reason: [u64; 4] = [0; 4];
    for tenant in 0..tenants as u32 {
        // Each tenant over-asks by one, and the last tenant's quota-legal
        // submissions spill past the global capacity.
        for _ in 0..=quota {
            let spec = JobSpec {
                tenant,
                ..JobSpec::default()
            };
            match rt.submit(spec) {
                Admission::Accepted(_) => accepted += 1,
                Admission::Rejected(r) => by_reason[reason_index(r)] += 1,
            }
        }
    }
    // One malformed spec and one dead-on-arrival deadline.
    let bad = JobSpec {
        steps: 0,
        ..JobSpec::default()
    };
    if rt.submit(bad) != Admission::Rejected(RejectReason::InvalidSpec) {
        violations.push("malformed spec was not rejected as invalid_spec".into());
    }
    let doa = JobSpec {
        deadline: Some(Duration::ZERO),
        ..JobSpec::default()
    };
    if rt.submit(doa) != Admission::Rejected(RejectReason::OverDeadline) {
        violations.push("zero-budget job was not rejected as over_deadline".into());
    }

    let ledger = rt.ledger();
    let expect_accepted = capacity.min(tenants * quota);
    if accepted != expect_accepted {
        violations.push(format!(
            "admission storm accepted {accepted} jobs, expected exactly {expect_accepted}"
        ));
    }
    if ledger.queue_depth_peak > capacity {
        violations.push(format!(
            "admitted backlog peaked at {} > capacity {capacity}",
            ledger.queue_depth_peak
        ));
    }
    for (&tenant, &peak) in &ledger.tenant_peak {
        if peak > quota {
            violations.push(format!("tenant {tenant} peaked at {peak} > quota {quota}"));
        }
    }
    let quota_rejects = by_reason[reason_index(RejectReason::QuotaExceeded)];
    let full_rejects = by_reason[reason_index(RejectReason::QueueFull)];
    if quota_rejects + full_rejects != tenants.max(1) * (quota + 1) - expect_accepted {
        violations.push(format!(
            "reject arithmetic off: {quota_rejects} quota + {full_rejects} queue_full \
             rejects against {accepted} accepted"
        ));
    }
    println!(
        "admission leg: {accepted} accepted, {quota_rejects} quota rejects, \
         {full_rejects} queue-full rejects, depth peak {} / {capacity}",
        ledger.queue_depth_peak
    );
    // Worker-less probe: its queue is deliberately never drained, so only
    // the admission counters are audited here.
}

fn reason_index(r: RejectReason) -> usize {
    match r {
        RejectReason::QueueFull => 0,
        RejectReason::QuotaExceeded => 1,
        RejectReason::OverDeadline => 2,
        RejectReason::InvalidSpec => 3,
    }
}

/// Leg 2b: deadline storm — nanosecond budgets fail typed and final,
/// unbounded siblings complete, per tenant.
fn deadline_storm(seed: u64, tenants: u64, violations: &mut Vec<String>) {
    let mut cfg = service_config("deadline", seed);
    cfg.workers = 2;
    cfg.tenant_quota = 4;
    cfg.queue_capacity = (tenants as usize * 2).max(4);
    let (quota, capacity) = (cfg.tenant_quota, cfg.queue_capacity);
    let rt = ServiceRuntime::start(cfg).expect("runtime");

    let mut doomed = Vec::new();
    let mut healthy = Vec::new();
    for tenant in 0..tenants as u32 {
        let dead = JobSpec {
            tenant,
            steps: 1,
            deadline: Some(Duration::from_nanos(1)),
            ..JobSpec::default()
        };
        doomed.push(rt.submit(dead).id().expect("1ns job admitted"));
        let alive = JobSpec {
            tenant,
            steps: 1,
            ..JobSpec::default()
        };
        healthy.push(rt.submit(alive).id().expect("unbounded job admitted"));
    }
    let ledger = rt.shutdown();
    for id in doomed {
        match &ledger.records[&id].state {
            JobState::Failed { error } if error.contains("deadline") => {}
            other => violations.push(format!(
                "1ns-budget job {id} should fail typed on deadline, got {other:?}"
            )),
        }
    }
    for id in healthy {
        if !matches!(ledger.records[&id].state, JobState::Completed(_)) {
            violations.push(format!(
                "unbounded job {id} should complete, got {:?}",
                ledger.records[&id].state
            ));
        }
    }
    if ledger.retries != 0 {
        violations.push(format!(
            "deadline failures must not burn retries, saw {}",
            ledger.retries
        ));
    }
    println!(
        "deadline leg: {} deadline failures (typed), {} completions, 0 retries",
        ledger.failed, ledger.completed
    );
    audit_into("deadline", &ledger, quota, capacity, violations);
}

/// Leg 3: the chaos campaign — kills, stragglers, and SCF faults under a
/// seeded plan while a full tenant matrix runs.
fn chaos_leg(seed: u64, tenants: u64, jobs: u64, violations: &mut Vec<String>) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xC4A0_55E1);
    let mut plan = FaultPlan::new();
    // Two worker kills (one per worker lane, early pickups), a straggler,
    // and SCF-level poison: the supervisor, the retry ladder, and the
    // in-solver rescue ladder all get exercised in one campaign.
    plan.push(FaultKind::WorkerKill, Site::Rank(0), 1 + rng.below(2));
    plan.push(FaultKind::WorkerKill, Site::Rank(1), 2 + rng.below(2));
    plan.push(
        FaultKind::Straggler {
            delay_us: 200 + rng.below(800),
        },
        Site::Rank(0),
        3 + rng.below(2),
    );
    plan.push(FaultKind::DensityNan, Site::Scf, 2 + rng.below(4));
    plan.push(FaultKind::DensityNan, Site::Domain(0), 4 + rng.below(6));
    println!("chaos leg: installing plan:");
    for f in &plan.faults {
        println!(
            "  {:<14} at {:<10} occurrence {}",
            f.kind.label(),
            f.site.describe(),
            f.at
        );
    }
    faults::reset_stats();
    faults::install(plan);

    // Injected kills are *supposed* to panic; keep their backtraces out
    // of the soak log. Anything else still prints through the old hook.
    let default_hook = std::panic::take_hook();
    let quiet_hook = std::sync::Arc::new(default_hook);
    let hook = std::sync::Arc::clone(&quiet_hook);
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("injected worker kill"));
        if !injected {
            hook(info);
        }
    }));

    let mut cfg = service_config("chaos", seed);
    cfg.workers = 2;
    cfg.tenant_quota = jobs.max(1) as usize;
    cfg.queue_capacity = (tenants * jobs).max(4) as usize;
    let (quota, capacity) = (cfg.tenant_quota, cfg.queue_capacity);
    let rt = ServiceRuntime::start(cfg).expect("runtime");

    let mut submitted = Vec::new();
    for tenant in 0..tenants as u32 {
        for j in 0..jobs as u32 {
            let spec = JobSpec {
                tenant,
                priority: (j % 3) as u8,
                steps: 1 + (j % 2),
                seed: u64::from(tenant) * 100 + u64::from(j),
                ..JobSpec::default()
            };
            match rt.submit(spec) {
                Admission::Accepted(id) => submitted.push(id),
                Admission::Rejected(r) => violations.push(format!(
                    "chaos submission tenant {tenant} job {j} bounced: {}",
                    r.label()
                )),
            }
        }
    }
    let ledger = rt.shutdown();
    faults::clear();
    let _ = std::panic::take_hook();

    for id in &submitted {
        if !ledger.records[id].state.is_terminal() {
            violations.push(format!("chaos job {id} stranded non-terminal"));
        }
    }
    let stats = faults::stats();
    if stats.injected > stats.recovered + stats.aborted {
        violations.push(format!(
            "fault ledger unbalanced: {} injected > {} recovered + {} aborted",
            stats.injected, stats.recovered, stats.aborted
        ));
    }
    println!(
        "chaos leg: {} jobs -> {} completed / {} failed; {} panics caught, \
         {} retries, {} preemptions; faults: {} injected, {} recovered, {} aborted",
        submitted.len(),
        ledger.completed,
        ledger.failed,
        ledger.panics_caught,
        ledger.retries,
        ledger.preemptions,
        stats.injected,
        stats.recovered,
        stats.aborted
    );
    if ledger.panics_caught == 0 {
        violations.push("the planned worker kills never landed (no panics caught)".into());
    }
    audit_into("chaos", &ledger, quota, capacity, violations);
    print_ledger(&ledger);
}

fn audit_into(
    leg: &str,
    ledger: &mqmd_serve::Ledger,
    quota: usize,
    capacity: usize,
    violations: &mut Vec<String>,
) {
    for v in ledger.audit(quota, capacity) {
        violations.push(format!("[{leg}] {v}"));
    }
}

fn print_ledger(ledger: &mqmd_serve::Ledger) {
    println!(
        "\n{}",
        row(
            "job",
            &[
                "tenant".into(),
                "prio".into(),
                "attempts".into(),
                "preempt".into(),
                "state".into()
            ]
        )
    );
    for rec in ledger.records.values() {
        println!(
            "{}",
            row(
                &format!("#{}", rec.id),
                &[
                    format!("{}", rec.tenant),
                    format!("{}", rec.priority),
                    format!("{}", rec.attempts),
                    format!("{}", rec.preemptions),
                    rec.state.label().into(),
                ],
            )
        );
    }
}

fn main() {
    let mut args = std::env::args();
    let _prog = args.next();
    let (mut seed, mut tenants, mut jobs) = (43u64, 4u64, 3u64);
    let (mut soak, mut chaos) = (false, false);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--soak" => soak = true,
            "--chaos" => chaos = true,
            "--seed" => seed = parse_u64(&mut args, "--seed"),
            "--tenants" => tenants = parse_u64(&mut args, "--tenants").max(1),
            "--jobs" => jobs = parse_u64(&mut args, "--jobs").max(1),
            _ => usage(),
        }
    }
    println!("== repro_serve: seed {seed}, {tenants} tenants x {jobs} jobs ==\n");
    faults::clear();
    faults::reset_stats();
    events::set_enabled(true);
    let _ = events::drain();

    let mut violations = Vec::new();
    preemption_probe(seed, &mut violations);
    if soak {
        admission_storm(seed, tenants, &mut violations);
        deadline_storm(seed, tenants, &mut violations);
    }
    if chaos {
        chaos_leg(seed, tenants, jobs, &mut violations);
    }

    events::set_enabled(false);
    let drops = events::dropped_by_lane();
    let (records, dropped) = events::drain();
    let job_events = records
        .iter()
        .filter(|r| matches!(r.event, events::Event::JobState { .. }))
        .count();
    println!(
        "\nevent log: {} records ({job_events} job transitions), {dropped} dropped across {} lanes",
        records.len(),
        drops.len()
    );

    if violations.is_empty() {
        println!("\nall service invariants hold");
    } else {
        println!();
        for v in &violations {
            println!("INVARIANT VIOLATED: {v}");
        }
        std::process::exit(1);
    }
}
