//! Reproduces the **§4.4 collective I/O** results: the group-size sweep
//! with its interior optimum (paper: 192 ranks per group), the read/write
//! fractions of a production run, and the space-filling-curve compression
//! ratio of trajectory data.
//!
//! Usage: `cargo run --release -p mqmd-bench --bin repro_io`

use mqmd_chem::nanoparticle::solvated_particle;
use mqmd_md::builders::sic_supercell;
use mqmd_md::io::CompressedFrame;
use mqmd_parallel::io::CollectiveIoModel;

fn main() {
    println!("== §4.4: collective I/O group-size sweep (786,432 ranks, 1 MB/rank) ==\n");
    let model = CollectiveIoModel::mira();
    let ranks = 786_432;
    let bytes = 1.0e6;
    println!("{:<14}{:>16}", "group size", "write time (s)");
    for g in [16usize, 48, 96, 192, 384, 768, 1536] {
        println!("{:<14}{:>16.2}", g, model.write_time(ranks, bytes, g));
    }
    let opt = model.optimal_group(ranks, bytes);
    println!("\noptimal group size: {opt} (paper: 192)\n");

    // Production-run I/O fraction (paper: 9.1 s read + 99 s write over 12 h
    // = 0.02% + 0.23%).
    let twelve_h = 12.0 * 3600.0;
    let write = model.write_time(ranks, bytes, opt);
    println!(
        "write fraction of a 12 h production run: {:.3}% (paper: 0.23%)\n",
        write / twelve_h * 100.0
    );

    println!("== §4.4: space-filling-curve trajectory compression ==\n");
    println!(
        "{:<34}{:>10}{:>14}{:>14}{:>10}",
        "system", "atoms", "raw bytes", "compressed", "ratio"
    );
    let crystal = sic_supercell((4, 4, 4));
    let frame = CompressedFrame::compress(&crystal, 12);
    println!(
        "{:<34}{:>10}{:>14}{:>14}{:>10.2}",
        "SiC crystal (ordered)",
        crystal.len(),
        frame.raw_bytes(),
        frame.compressed_bytes(),
        frame.ratio()
    );
    let solvated = solvated_particle(30, 182, 50.0, 1);
    let frame2 = CompressedFrame::compress(&solvated, 12);
    println!(
        "{:<34}{:>10}{:>14}{:>14}{:>10.2}",
        "Li30Al30 + 182 H2O (production-like)",
        solvated.len(),
        frame2.raw_bytes(),
        frame2.compressed_bytes(),
        frame2.ratio()
    );
    println!(
        "\n(paper: \"the compression ratio is rather small for the 16,611-atom \
         production run\" — disordered systems compress less than crystals, as seen above)"
    );
}
