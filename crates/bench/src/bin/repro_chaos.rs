//! Seeded chaos campaign: runs the QMD pipeline under a deterministic
//! fault plan and checks the recovery invariants hold.
//!
//! Four legs, all driven by one `FaultPlan::generate(seed, faults)` so a
//! failing campaign replays bitwise from its seed:
//!
//! 1. **Reference** (plane idle): the fault-free H₂ SCF energy and an
//!    uninterrupted LDC QMD trajectory.
//! 2. **Checkpoint kill-and-resume** (plane idle): the same QMD run is
//!    killed halfway, checkpointed through the on-disk store (atomic
//!    write + FNV-64 checksum), restored into a fresh driver/solver, and
//!    must replay **bitwise** against the uninterrupted reference.
//! 3. **Chaos**: the plan is installed and the SCF (Site::Scf faults),
//!    the QMD run (Site::Domain faults), and a rank/torus leg
//!    (Site::Rank stragglers, machine faults) all execute under it;
//!    then a real-transport leg kills a seeded victim rank mid-collective
//!    (allreduce, allgather, halo exchange) with the recovery supervisor
//!    armed — every run must heal by respawn and finish bitwise-equal to
//!    the thread reference.
//! 4. **Accounting**: the campaign ledger must balance — every injected
//!    fault recovered or surfaced as a typed error, no NaN anywhere, the
//!    chaos trajectory's energy drift bounded, and the structured event
//!    log consistent with the counters.
//!
//! Usage: `repro_chaos [--seed N] [--faults N] [--steps N]`
//!
//! Exit codes: 0 = all invariants hold, 1 = an invariant failed,
//! 2 = bad arguments.

use mqmd_bench::real_ranks::{run_thread_reference, worker_bin};
use mqmd_bench::{row, tiny_ldc_config};
use mqmd_core::global::LdcSolver;
use mqmd_core::qmd::QmdDriver;
use mqmd_dft::pw::PlaneWaveBasis;
use mqmd_dft::scf::{run_scf, ScfConfig};
use mqmd_dft::species::Pseudopotential;
use mqmd_grid::UniformGrid3;
use mqmd_md::builders::sic_supercell;
use mqmd_md::io::{Checkpoint, CheckpointStore};
use mqmd_md::thermostat::NoseHoover;
use mqmd_md::AtomicSystem;
use mqmd_parallel::collectives::{allreduce_time_faulty, node_loss_recompute_time};
use mqmd_parallel::executor::run_ranks;
use mqmd_parallel::process::{run_processes, ProcessOpts, RecoveryOpts};
use mqmd_parallel::topology::{FaultyTorus, Torus};
use mqmd_parallel::Comm;
use mqmd_parallel::MachineSpec;
use mqmd_util::constants::Element;
use mqmd_util::faults::{self, CampaignSpec, FaultKind, FaultPlan, Site};
use mqmd_util::{events, MqmdError, Vec3, Xoshiro256pp};

/// Energy drift allowed for a *recovered* chaos trajectory relative to
/// the fault-free reference, per step (Hartree). Recovery retries may
/// reconverge SCF along a slightly different path within its density
/// tolerance, so bitwise identity is not expected — but the trajectory
/// must stay on the same potential-energy surface.
const DRIFT_TOL: f64 = 1e-1;

fn usage() -> ! {
    eprintln!("usage: repro_chaos [--seed N] [--faults N] [--steps N]");
    std::process::exit(2);
}

fn parse_u64(args: &mut std::env::Args, flag: &str) -> u64 {
    match args.next().map(|v| v.parse::<u64>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("error: {flag} needs a non-negative integer");
            std::process::exit(2);
        }
    }
}

fn h2_atoms() -> Vec<(Pseudopotential, Vec3)> {
    let p = Pseudopotential::for_element(Element::H);
    vec![(p, Vec3::new(3.3, 4.0, 4.0)), (p, Vec3::new(4.7, 4.0, 4.0))]
}

fn h2_basis() -> PlaneWaveBasis {
    PlaneWaveBasis::new(UniformGrid3::cubic(10, 8.0), 3.0)
}

fn qmd_system() -> AtomicSystem {
    sic_supercell((1, 1, 1))
}

fn qmd_solver() -> LdcSolver {
    LdcSolver::new(tiny_ldc_config())
}

fn qmd_driver() -> QmdDriver<NoseHoover> {
    QmdDriver::new(10.0, Some(NoseHoover::new(300.0, 2, 200.0)))
}

fn main() {
    let mut args = std::env::args();
    let _prog = args.next();
    let (mut seed, mut n_faults, mut steps) = (42u64, 8u64, 2u64);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = parse_u64(&mut args, "--seed"),
            "--faults" => n_faults = parse_u64(&mut args, "--faults"),
            "--steps" => steps = parse_u64(&mut args, "--steps").max(2),
            _ => usage(),
        }
    }
    let mut violations: Vec<String> = Vec::new();

    println!("== repro_chaos: seed {seed}, {n_faults} faults, {steps} QMD steps ==\n");
    faults::clear();
    faults::reset_stats();

    // ---- Leg 1: fault-free references -----------------------------------
    let e_scf_ref = run_scf(&h2_basis(), &h2_atoms(), 2.0, &ScfConfig::default(), None)
        .expect("fault-free H2 SCF must converge")
        .energy;
    println!("reference H2 SCF energy: {e_scf_ref:.6} Ha");

    let mut sys_ref = qmd_system();
    let mut solver_ref = qmd_solver();
    let rep_ref = qmd_driver()
        .try_run(&mut sys_ref, &mut solver_ref, steps as usize)
        .expect("fault-free QMD reference must complete");
    println!(
        "reference QMD: {} steps, {} SCF iterations, E_final {:.6} Ha, {:.1} s wall\n",
        rep_ref.steps,
        rep_ref.scf_iterations,
        rep_ref.energies.last().copied().unwrap_or(f64::NAN),
        rep_ref.wall_seconds
    );
    let per_step_secs = rep_ref.wall_seconds / steps as f64;

    // ---- Leg 2: checkpoint kill-and-resume, bitwise ---------------------
    let steps_a = (steps / 2).max(1);
    let steps_b = steps - steps_a;
    let mut sys = qmd_system();
    let mut s1 = qmd_solver();
    let mut d1 = qmd_driver();
    let rep_a = d1
        .try_run(&mut sys, &mut s1, steps_a as usize)
        .expect("first leg completes");
    let dir = std::env::temp_dir().join(format!("mqmd_chaos_ckp_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = CheckpointStore::open(&dir, 2).expect("checkpoint dir");
    store
        .save(&d1.checkpoint(steps_a, &sys, s1.export_state()))
        .expect("checkpoint saves");
    drop((sys, s1, d1));

    let ckp: Checkpoint = store
        .load_latest()
        .expect("store readable")
        .expect("one checkpoint present");
    let mut d2 = qmd_driver();
    let (mut sys2, blob) = d2.restore(&ckp);
    let mut s2 = qmd_solver();
    s2.import_state(&blob).expect("solver state imports");
    let rep_b = d2
        .try_run(&mut sys2, &mut s2, steps_b as usize)
        .expect("resumed leg completes");
    std::fs::remove_dir_all(&dir).ok();

    let stitched: Vec<f64> = rep_a
        .energies
        .iter()
        .chain(&rep_b.energies)
        .copied()
        .collect();
    let bitwise_pos = sys_ref.positions.iter().zip(&sys2.positions).all(|(a, b)| {
        a.x.to_bits() == b.x.to_bits()
            && a.y.to_bits() == b.y.to_bits()
            && a.z.to_bits() == b.z.to_bits()
    });
    let bitwise_vel = sys_ref
        .velocities
        .iter()
        .zip(&sys2.velocities)
        .all(|(a, b)| {
            a.x.to_bits() == b.x.to_bits()
                && a.y.to_bits() == b.y.to_bits()
                && a.z.to_bits() == b.z.to_bits()
        });
    let bitwise_e = stitched.len() == rep_ref.energies.len()
        && stitched
            .iter()
            .zip(&rep_ref.energies)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    if bitwise_pos && bitwise_vel && bitwise_e {
        println!(
            "checkpoint leg: resume after step {steps_a} replays bitwise ({} energies match)\n",
            stitched.len()
        );
    } else {
        violations.push(format!(
            "checkpoint resume diverged from uninterrupted run \
             (positions {bitwise_pos}, velocities {bitwise_vel}, energies {bitwise_e})"
        ));
    }

    // ---- Leg 3: the chaos campaign --------------------------------------
    let spec = CampaignSpec {
        domains: vec![0, 1], // tiny_ldc_config decomposes into 2 domains
        max_occurrence: 12,
        ranks: 4,
        nodes: 32,
        torus_dims: 5,
    };
    let plan = FaultPlan::generate(seed, n_faults as usize, &spec);
    println!("installing plan:");
    for f in &plan.faults {
        println!(
            "  {:<16} at {:<10} occurrence {}",
            f.kind.label(),
            f.site.describe(),
            f.at
        );
    }
    println!();
    events::set_enabled(true);
    let _ = events::drain();
    faults::reset_stats();
    faults::install(plan);

    // 3a. Conventional SCF under Site::Scf faults.
    match run_scf(&h2_basis(), &h2_atoms(), 2.0, &ScfConfig::default(), None) {
        Ok(out) => {
            if !out.energy.is_finite() || out.density.iter().any(|r| !r.is_finite()) {
                violations.push("NaN escaped the SCF rescue ladder".into());
            } else if (out.energy - e_scf_ref).abs() > 1e-3 {
                violations.push(format!(
                    "rescued SCF energy {} strayed from reference {}",
                    out.energy, e_scf_ref
                ));
            } else {
                println!("chaos SCF leg: recovered to {:.6} Ha", out.energy);
            }
        }
        Err(MqmdError::Convergence { .. }) => {
            println!("chaos SCF leg: surfaced a typed convergence error (accepted)");
        }
        Err(e) => violations.push(format!("SCF leg returned a non-convergence error: {e}")),
    }

    // 3b. LDC QMD under Site::Domain faults.
    let mut sys_c = qmd_system();
    let mut solver_c = qmd_solver();
    match qmd_driver().try_run(&mut sys_c, &mut solver_c, steps as usize) {
        Ok(rep) => {
            if rep.energies.iter().any(|e| !e.is_finite()) {
                violations.push("NaN escaped the QMD recovery path".into());
            } else {
                let drift = rep
                    .energies
                    .iter()
                    .zip(&rep_ref.energies)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max);
                if drift > DRIFT_TOL {
                    violations.push(format!(
                        "chaos QMD drifted {drift:.3e} Ha from the reference (tol {DRIFT_TOL:.0e})"
                    ));
                } else {
                    println!("chaos QMD leg: recovered, max energy drift {drift:.3e} Ha");
                }
            }
        }
        Err(MqmdError::Convergence { .. }) => {
            println!("chaos QMD leg: surfaced a typed convergence error (accepted)");
        }
        Err(e) => violations.push(format!("QMD leg returned a non-convergence error: {e}")),
    }

    // 3c. Rank stragglers + machine faults: the executor absorbs late
    // ranks, and the degraded torus prices the rerouted communication.
    let ft = FaultyTorus::adopt(Torus::new(&[4, 4, 2]));
    let out = run_ranks(4, |rank, comm| {
        comm.allreduce_sum(vec![rank as f64; 1024])
            .expect("allreduce under stragglers")
    });
    if out.iter().any(|o| o[0] != 6.0) {
        violations.push("allreduce under stragglers produced a wrong sum".into());
    }
    let mira = MachineSpec::mira();
    let t_allreduce = allreduce_time_faulty(&mira, 8.0 * 1024.0, 4096, ft.faults());
    let t_recompute = node_loss_recompute_time(per_step_secs, 8, ft.faults());
    println!(
        "chaos machine leg: {} nodes alive of {}, degraded 4096-rank allreduce {:.2e} s, \
         node-loss recompute {:.2} s\n",
        ft.alive_nodes(),
        ft.base().nodes(),
        t_allreduce,
        t_recompute
    );

    // 3d. Real-transport rank kills mid-collective: the plane SIGKILLs a
    // seeded victim during each collective family; the recovery
    // supervisor must respawn it and replay to a bitwise-clean finish.
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x7261_6e6b_6b69_6c6c);
    let victim = rng.below(4) as usize;
    // Enough rounds that the victim cannot outrun its own kill: the
    // switch trips on the victim's second routed frame, dozens of
    // hub round trips before the program can finish.
    let kill_cases: [(&str, Vec<f64>); 3] = [
        ("count_allreduce", vec![50.0, 32.0]),
        ("count_allgather", vec![50.0, 32.0]),
        ("count_halo", vec![16.0, 40.0]),
    ];
    // Thread references first: the thread backend polls Site::Rank too
    // and would otherwise consume the planned kill occurrences.
    let references: Vec<Vec<Vec<f64>>> = kill_cases
        .iter()
        .map(|(program, args)| run_thread_reference(program, 4, args).expect("program registered"))
        .collect();
    let mut kill_plan = FaultPlan::new();
    for occurrence in 1..=kill_cases.len() as u64 {
        kill_plan.push(FaultKind::WorkerKill, Site::Rank(victim as u64), occurrence);
    }
    faults::install(kill_plan);
    for ((program, args), reference) in kill_cases.into_iter().zip(references) {
        let opts = ProcessOpts {
            deadline: std::time::Duration::from_secs(60),
            args: args.clone(),
            recovery: Some(RecoveryOpts::default()),
            ..Default::default()
        };
        match run_processes(&worker_bin(), program, 4, opts) {
            Ok(p) => {
                if p.recovery.restarts == 0 {
                    violations.push(format!(
                        "{program}: kill of rank {victim} left no respawn in the stats"
                    ));
                } else if p.results != reference {
                    violations.push(format!(
                        "{program}: healed run differs from the thread reference"
                    ));
                } else {
                    println!(
                        "chaos rank-kill leg: {program} healed rank {victim} \
                         ({} respawn) bitwise-clean",
                        p.recovery.restarts
                    );
                }
            }
            Err(e) => violations.push(format!(
                "{program}: run under rank-kill failed instead of healing: {e}"
            )),
        }
    }
    println!();

    faults::clear();
    events::set_enabled(false);
    let (records, dropped) = events::drain();

    // ---- Leg 4: the accounting invariants --------------------------------
    let s = faults::stats();
    println!("{}", row("fault class", &["injected".into()]));
    for (kind, n) in &s.by_kind {
        println!("{}", row(kind, &[format!("{n}")]));
    }
    println!("\n{}", row("recovery action", &["count".into()]));
    for (action, n) in &s.by_action {
        println!("{}", row(action, &[format!("{n}")]));
    }
    println!(
        "\nledger: {} injected, {} recovered, {} aborted, {:.3} s recompute",
        s.injected, s.recovered, s.aborted, s.recompute_seconds
    );

    if s.injected > s.recovered + s.aborted {
        violations.push(format!(
            "recovery ledger unbalanced: {} injected > {} recovered + {} aborted",
            s.injected, s.recovered, s.aborted
        ));
    }
    if dropped == 0 {
        let injected_events = records
            .iter()
            .filter(|r| matches!(r.event, events::Event::FaultInjected { .. }))
            .count() as u64;
        if injected_events != s.injected {
            violations.push(format!(
                "event log saw {injected_events} FaultInjected records but counters say {}",
                s.injected
            ));
        }
        let recovery_events = records
            .iter()
            .filter(|r| matches!(r.event, events::Event::RecoveryAction { .. }))
            .count() as u64;
        if recovery_events != s.recovered + s.aborted {
            violations.push(format!(
                "event log saw {recovery_events} RecoveryAction records but counters say {}",
                s.recovered + s.aborted
            ));
        }
    } else {
        eprintln!("warning: event sink dropped {dropped} records; skipping event-count check");
    }

    if violations.is_empty() {
        println!("\nall chaos invariants hold");
    } else {
        println!();
        for v in &violations {
            println!("INVARIANT VIOLATED: {v}");
        }
        std::process::exit(1);
    }
}
