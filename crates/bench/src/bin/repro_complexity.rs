//! Reproduces the **§3.1 / §5.2** complexity analysis in closed form: the
//! optimal domain size, the paper's quoted LDC/DC speedup factors at each
//! energy-tolerance level, and the O(N)↔O(N³) crossover.
//!
//! Usage: `cargo run --release -p mqmd-bench --bin repro_complexity`

use mqmd_core::complexity::{atoms_in_cube, crossover_length, optimal_core_length, CostModel};

fn main() {
    println!("== §3.1: optimal domain size l* = 2b/(ν−1) ==\n");
    for b in [2.0, 3.57, 4.73] {
        println!(
            "b = {b:>5.2} a.u. → l*(ν=2) = {:>6.2}, l*(ν=3) = {:>6.2}",
            optimal_core_length(b, 2.0),
            optimal_core_length(b, 3.0)
        );
    }

    println!("\n== §5.2: LDC over DC speedup from the Fig 7 buffer reduction ==\n");
    // The paper's buffer pairs per energy-convergence criterion (CdSe,
    // l = 11.416 a.u.).
    let l = 11.416;
    // (b_DC, b_LDC) per criterion are read off Fig 7's two convergence
    // curves; the paper quotes only the resulting speedups.
    let cases = [
        ("1×10⁻² Ha", 4.38, 2.90, 2.59, 4.18),
        ("5×10⁻³ Ha", 4.73, 3.57, 2.03, 2.89),
        ("1×10⁻³ Ha", 5.67, 5.02, 1.42, 1.69),
    ];
    println!(
        "{:<12}{:>8}{:>8}{:>14}{:>10}{:>14}{:>10}",
        "criterion", "b_DC", "b_LDC", "speedup ν=2", "paper", "speedup ν=3", "paper"
    );
    for (label, b_dc, b_ldc, paper2, paper3) in cases {
        let s2 = CostModel::PRACTICAL.buffer_speedup(l, b_dc, b_ldc);
        let s3 = CostModel::ASYMPTOTIC.buffer_speedup(l, b_dc, b_ldc);
        println!(
            "{label:<12}{b_dc:>8.2}{b_ldc:>8.2}{s2:>14.2}{paper2:>10.2}{s3:>14.2}{paper3:>10.2}"
        );
    }

    println!("\n== §5.2: O(N)/O(N³) crossover ==\n");
    let b = 3.57;
    let l_cross = crossover_length(b, 2.0);
    let density = 512.0 / 45.664f64.powi(3); // CdSe atom density
    println!(
        "b = {b} a.u. → crossover L = {:.2} a.u. = {:.0} atoms (paper: 28.56 a.u., 125 atoms)",
        l_cross,
        atoms_in_cube(l_cross, density)
    );
    let b_strict = 1.5 * b;
    println!(
        "50% thicker buffer → {:.0} atoms (paper: 422 atoms)",
        atoms_in_cube(crossover_length(b_strict, 2.0), density)
    );
}
