//! Measured roofline: machine peaks probed on the running host, plus the
//! placement of this repository's vectorized kernels under them.
//!
//! The paper's headline efficiency claim (Table 1/2: 50.5% of peak on the
//! full Blue Gene/Q) is a roofline statement: the QPX-vectorized GEMM sits
//! near the compute roof, the FFT and stencil kernels near the bandwidth
//! roof. This module reproduces the *measurement method* on whatever host
//! runs the benches:
//!
//! * **compute peak** — an FMA ladder: independent fused multiply-add
//!   chains unrolled across registers, the textbook peak-FLOP/s probe.
//!   With the `simd` feature it runs on `F64x4` (AVX2 FMA, 8 FLOPs per
//!   vector op); without it, on scalar multiply-adds — so the scalar CI
//!   leg measures the scalar machine peak, and fractions stay comparable.
//! * **bandwidth peak** — a streaming triad `a[i] = b[i] + s·c[i]` over
//!   arrays far larger than the last-level cache, counting 24 bytes per
//!   element (two reads, one write; write-allocate traffic ignored, as in
//!   STREAM's convention).
//!
//! Kernel placements use *analytic* FLOP and byte counts (the same
//! `mqmd_util::flops` tallies the profiles report), so the
//! fraction-of-peak is conservative: kernels whose working set sits in
//! cache can exceed a DRAM-derived bandwidth roof, and that is fine — the
//! `--gate-roofline` check is a *floor*, designed to catch a vectorized
//! kernel silently collapsing back to far-below-roof throughput.

use mqmd_fft::Fft3d;
use mqmd_grid::UniformGrid3;
use mqmd_linalg::gemm::dgemm;
use mqmd_linalg::Matrix;
use mqmd_multigrid::smoother::rbgs_sweep;
use mqmd_util::metrics::Roofline;
use mqmd_util::timer::Stopwatch;
use mqmd_util::Complex64;
use rayon::prelude::*;

/// Seconds each measurement loop aims to run. Long enough to amortise
/// timer resolution, short enough that the whole roofline takes ~2 s.
const TARGET_SECS: f64 = 0.2;

/// Runs `f` repeatedly (after one warm-up call) until [`TARGET_SECS`]
/// elapse, returning `(wall_seconds, repetitions)`.
fn time_reps(mut f: impl FnMut()) -> (f64, u64) {
    f();
    let sw = Stopwatch::start();
    let mut reps = 0u64;
    loop {
        f();
        reps += 1;
        let secs = sw.seconds();
        if (secs >= TARGET_SECS && reps >= 3) || reps >= 1_000_000 {
            return (secs.max(1e-9), reps);
        }
    }
}

/// FLOPs one ladder call performs per thread.
const LADDER_CHAINS: usize = 16;
const LADDER_ITERS: u64 = 200_000;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod ladder {
    use super::{LADDER_CHAINS, LADDER_ITERS};
    use mqmd_util::simd::F64x4;

    /// FLOPs per [`run`] call: 4 lanes × 2 (FMA) per chain per iteration.
    pub fn flops_per_call() -> u64 {
        if mqmd_util::simd::simd_available() {
            LADDER_ITERS * LADDER_CHAINS as u64 * 8
        } else {
            LADDER_ITERS * LADDER_CHAINS as u64 * 2
        }
    }

    pub fn run() -> f64 {
        if mqmd_util::simd::simd_available() {
            // SAFETY: probe verified AVX2+FMA.
            unsafe { fma_ladder_avx2() }
        } else {
            super::scalar_ladder()
        }
    }

    /// # Safety
    /// Requires AVX2+FMA at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn fma_ladder_avx2() -> f64 {
        let m = F64x4::splat(1.000_000_001);
        let c = F64x4::splat(1e-9);
        let mut acc = [F64x4::splat(1.0); LADDER_CHAINS];
        for _ in 0..LADDER_ITERS {
            for a in acc.iter_mut() {
                *a = a.mul_add(m, c);
            }
        }
        acc.iter().map(|v| v.hsum_ordered()).sum()
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod ladder {
    use super::{LADDER_CHAINS, LADDER_ITERS};

    /// FLOPs per [`run`] call: 2 per chain per iteration (mul + add).
    pub fn flops_per_call() -> u64 {
        LADDER_ITERS * LADDER_CHAINS as u64 * 2
    }

    pub fn run() -> f64 {
        super::scalar_ladder()
    }
}

/// Scalar multiply-add ladder (the `--no-default-features` compute peak).
fn scalar_ladder() -> f64 {
    let m = 1.000_000_001f64;
    let c = 1e-9f64;
    let mut acc = [1.0f64; LADDER_CHAINS];
    for _ in 0..LADDER_ITERS {
        for a in acc.iter_mut() {
            *a = *a * m + c;
        }
    }
    acc.iter().sum()
}

/// Measures the machine compute peak in GFLOP/s: the FMA ladder on every
/// rayon worker concurrently.
pub fn measure_peak_gflops() -> f64 {
    let threads = rayon::current_num_threads().max(1);
    let (secs, reps) = time_reps(|| {
        let sink: f64 = (0..threads).into_par_iter().map(|_| ladder::run()).sum();
        std::hint::black_box(sink);
    });
    let flops = reps as f64 * threads as f64 * ladder::flops_per_call() as f64;
    flops / secs / 1e9
}

/// Measures the machine bandwidth peak in GB/s: a parallel streaming triad
/// over three 32 MiB arrays (96 MiB total, far over any last-level cache).
pub fn measure_peak_bw_gbps() -> f64 {
    let n = 1 << 22; // 4 Mi doubles per array
    let b = vec![1.0f64; n];
    let c = vec![2.0f64; n];
    let mut a = vec![0.0f64; n];
    let s = 3.0f64;
    let chunk = 1 << 16;
    let (secs, reps) = time_reps(|| {
        a.par_chunks_mut(chunk).enumerate().for_each(|(i, ac)| {
            let base = i * chunk;
            for (j, x) in ac.iter_mut().enumerate() {
                *x = b[base + j] + s * c[base + j];
            }
        });
        std::hint::black_box(a.first());
    });
    // STREAM triad convention: 2 reads + 1 write per element.
    let bytes = reps as f64 * (3 * 8 * n) as f64;
    bytes / secs / 1e9
}

/// Measures the three vectorized kernels and records their placements
/// (achieved GFLOP/s + analytic intensity) into `r`.
pub fn place_kernels(r: &mut Roofline) {
    // GEMM: square dgemm through the dispatcher (packed SIMD microkernel
    // when available). Analytic: 2n³ FLOPs, 8·(n² + n² + 2n²) bytes.
    {
        let n = 256usize;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 13) as f64 * 0.1 - 0.6);
        let b = Matrix::from_fn(n, n, |i, j| ((i + 5 * j) % 11) as f64 * 0.1 - 0.5);
        let mut c = Matrix::zeros(n, n);
        let (secs, reps) = time_reps(|| {
            dgemm(1.0, &a, &b, 0.0, &mut c);
            std::hint::black_box(c.data().first());
        });
        let flops_per_call = 2.0 * (n * n * n) as f64;
        let bytes_per_call = (8 * 4 * n * n) as f64;
        r.place(
            "gemm",
            reps as f64 * flops_per_call / secs / 1e9,
            flops_per_call / bytes_per_call,
        );
    }

    // FFT: 64³ complex forward transform (pencil-parallel, vectorized
    // Stockham butterflies). FLOPs from the analytic tally; bytes modelled
    // as one read + one write of every point per radix-2 stage per axis.
    {
        let n = 64usize;
        let plan = Fft3d::new(n, n, n);
        let mut x: Vec<Complex64> = (0..n * n * n)
            .map(|i| Complex64::new((i % 97) as f64 * 0.01, (i % 89) as f64 * 0.02))
            .collect();
        mqmd_util::flops::take_flops();
        plan.forward(&mut x);
        let flops_per_call = mqmd_util::flops::take_flops() as f64;
        let (secs, reps) = time_reps(|| {
            plan.forward(&mut x);
            std::hint::black_box(x.first());
        });
        let stages = (n as f64).log2();
        let bytes_per_call = 3.0 * (n * n * n) as f64 * 32.0 * stages;
        r.place(
            "fft",
            reps as f64 * flops_per_call / secs / 1e9,
            flops_per_call / bytes_per_call,
        );
    }

    // Multigrid smoother: red-black Gauss–Seidel on 64³. Analytic: 10
    // FLOPs per cell per sweep (6 stencil mul/adds, 2 combining adds, one
    // subtract, one divide); 8 f64 accesses per cell (6 neighbour reads,
    // the rhs read, the write).
    {
        let n = 64usize;
        let g = UniformGrid3::cubic(n, 6.0);
        let f = g.sample(|p| (p.x * 0.7).sin() * (p.y * 0.4).cos() + 0.1 * p.z);
        let mut u = vec![0.0; g.len()];
        let (secs, reps) = time_reps(|| {
            rbgs_sweep(&g, &mut u, &f);
            std::hint::black_box(u.first());
        });
        let cells = (n * n * n) as f64;
        let flops_per_call = 10.0 * cells;
        let bytes_per_call = 8.0 * 8.0 * cells;
        r.place(
            "mg_smoother",
            reps as f64 * flops_per_call / secs / 1e9,
            flops_per_call / bytes_per_call,
        );
    }
}

/// Measures the full roofline: machine peaks plus kernel placements.
pub fn measure_roofline() -> Roofline {
    let mut r = Roofline {
        peak_gflops: measure_peak_gflops(),
        peak_bw_gbps: measure_peak_bw_gbps(),
        ..Default::default()
    };
    place_kernels(&mut r);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_are_positive_and_finite() {
        let p = measure_peak_gflops();
        assert!(p.is_finite() && p > 0.0, "compute peak: {p}");
        let bw = measure_peak_bw_gbps();
        assert!(bw.is_finite() && bw > 0.0, "bandwidth peak: {bw}");
    }

    #[test]
    fn kernel_placements_are_complete() {
        let mut r = Roofline {
            peak_gflops: 100.0,
            peak_bw_gbps: 20.0,
            ..Default::default()
        };
        place_kernels(&mut r);
        for name in ["gemm", "fft", "mg_smoother"] {
            let k = &r.kernels[name];
            assert!(k.achieved_gflops > 0.0, "{name} achieved");
            assert!(k.intensity_flops_per_byte > 0.0, "{name} intensity");
            assert!(k.roofline_gflops > 0.0, "{name} roofline");
            assert!(k.fraction_of_peak > 0.0, "{name} fraction");
        }
        // GEMM at n=256 is compute-bound (intensity 16 FLOPs/byte), the
        // smoother bandwidth-bound (10/64 FLOPs/byte).
        assert!(r.kernels["gemm"].intensity_flops_per_byte > 10.0);
        assert!(r.kernels["mg_smoother"].intensity_flops_per_byte < 1.0);
    }
}
