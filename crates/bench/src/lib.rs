//! # mqmd-bench
//!
//! Shared harness for the reproduction binaries (`src/bin/repro_*.rs`) and
//! the Criterion benches (`benches/`). Each paper table/figure has one
//! bench target and one binary that prints the same rows/series the paper
//! reports; `EXPERIMENTS.md` records paper-vs-measured for all of them.
//!
//! The split of responsibilities:
//!
//! * **measured** quantities come from running this repository's real Rust
//!   kernels (domain Kohn–Sham solves, FFTs, multigrid, kMC);
//! * **modelled** quantities (wall-clock at 786,432 cores, sustained
//!   FLOP/s of a Blue Gene/Q rack) come from `mqmd-parallel`'s machine
//!   model fed with those measurements, per the DESIGN.md substitution.

pub mod real_ranks;
pub mod roofline;

use mqmd_core::domain_solver::{solve_domain, DomainSetup};
use mqmd_core::global::{BoundaryMode, HartreeSolver, LdcConfig, LdcSolver};
use mqmd_grid::DomainDecomposition;
use mqmd_md::builders::sic_supercell;
use mqmd_md::AtomicSystem;
use mqmd_util::timer::Stopwatch;

/// Reduced-cost LDC settings used by benches: coarse grids and loose
/// tolerances keep wall times laptop-friendly while preserving every code
/// path.
pub fn bench_ldc_config() -> LdcConfig {
    LdcConfig {
        nd: (2, 2, 2),
        buffer: 2.0,
        mode: BoundaryMode::ldc_default(),
        hartree: HartreeSolver::Multigrid,
        global_spacing: 1.0,
        domain_spacing: 1.0,
        ecut: 2.5,
        kt: 0.05,
        mix_alpha: 0.3,
        max_scf: 60,
        tol_density: 1e-4,
        davidson_iters: 10,
        davidson_tol: 1e-5,
        extra_bands: 3,
    }
}

/// Miniature LDC settings for Criterion benches that run full SCF solves
/// inside the 10-sample measurement loop: an 8-atom cell at coarse
/// discretisation solves in a couple of seconds while exercising every code
/// path (the repro binaries keep the full-size settings).
pub fn tiny_ldc_config() -> LdcConfig {
    LdcConfig {
        nd: (2, 1, 1),
        buffer: 1.0,
        global_spacing: 1.2,
        domain_spacing: 1.2,
        ecut: 2.0,
        tol_density: 5e-4,
        davidson_iters: 6,
        davidson_tol: 1e-4,
        extra_bands: 2,
        ..bench_ldc_config()
    }
}

/// The Fig 5 per-core workload: the 64-atom SiC block (2×2×2 conventional
/// cells) each Blue Gene/Q core owns in the weak-scaling run.
pub fn fig5_workload() -> AtomicSystem {
    sic_supercell((2, 2, 2))
}

/// Measures the real wall-clock of one domain Kohn–Sham solve on the Fig 5
/// workload (the `t_domain` the weak-scaling model consumes).
///
/// `ecut`/`spacing` control cost; the defaults solve 64 atoms with ~10³
/// plane waves in a few seconds.
pub fn measure_domain_solve_seconds(ecut: f64, spacing: f64, davidson_iters: usize) -> f64 {
    let sys = fig5_workload();
    let dd = DomainDecomposition::new(sys.cell, (1, 1, 1), 0.0);
    let global_grid = mqmd_dft::solver::grid_for_cell(sys.cell, spacing);
    let v_ion = mqmd_dft::hamiltonian::ionic_local_potential(
        &global_grid,
        &mqmd_dft::solver::atoms_of(&sys),
    );
    let setup = DomainSetup::build(
        &dd.domains()[0],
        &dd,
        &sys,
        spacing,
        ecut,
        4,
        &global_grid,
        &v_ion,
    )
    .expect("SiC block is non-empty");
    let zeros = vec![0.0; setup.grid.len()];
    let sw = Stopwatch::start();
    let bands =
        solve_domain(&setup, &zeros, &zeros, None, davidson_iters, 1e-6).expect("domain solve");
    std::hint::black_box(bands.eigenvalues.len());
    sw.seconds()
}

/// Builds an LDC solver with bench settings and the given
/// decomposition/buffer/mode overrides.
pub fn ldc_solver(nd: (usize, usize, usize), buffer: f64, mode: BoundaryMode) -> LdcSolver {
    LdcSolver::new(LdcConfig {
        nd,
        buffer,
        mode,
        ..bench_ldc_config()
    })
}

/// Formats a table row of label + values for the repro binaries.
pub fn row(label: &str, values: &[String]) -> String {
    let mut out = format!("{label:<28}");
    for v in values {
        out.push_str(&format!("{v:>16}"));
    }
    out
}

/// Relative deviation as a percentage string.
pub fn pct_dev(measured: f64, paper: f64) -> String {
    format!("{:+.1}%", (measured - paper) / paper * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_workload_is_64_atoms() {
        assert_eq!(fig5_workload().len(), 64);
    }

    #[test]
    fn domain_solve_measurement_is_positive() {
        let t = measure_domain_solve_seconds(1.5, 1.3, 2);
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn row_formatting() {
        let r = row("label", &["1".into(), "2".into()]);
        assert!(r.starts_with("label"));
        assert!(r.contains('1') && r.contains('2'));
    }
}
