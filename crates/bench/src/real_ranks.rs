//! Named rank programs for the real multi-process runtime.
//!
//! The `mqmd-rank` worker binary resolves [`REGISTRY`] by name (from
//! `MQMD_RANK_PROGRAM`); the same function pointers also run on the
//! in-process thread backend via [`run_thread_reference`], which is how
//! the bitwise gate compares the two transports: **one program, two
//! transports, identical bits**.
//!
//! Program contract: every rank calls the program with the same `args`
//! (broadcast through the environment); the returned `Vec<f64>` is the
//! rank's RESULT payload. Programs must be deterministic functions of
//! `(rank, size, args)` so thread and process backends agree bitwise —
//! except `pingpong`, which measures wall-clock by design.

use mqmd_core::distributed::solve_distributed;
use mqmd_core::global::{BoundaryMode, HartreeSolver, LdcConfig};
use mqmd_md::AtomicSystem;
use mqmd_parallel::comm::{Comm, CommError, CommResult, RankProgram};
use mqmd_parallel::executor::run_ranks;
use mqmd_util::constants::Element;
use mqmd_util::timer::Stopwatch;
use mqmd_util::Vec3;
use std::path::PathBuf;

/// Every program the `mqmd-rank` worker can run, by wire name.
pub const REGISTRY: &[(&str, RankProgram)] = &[
    ("collectives_smoke", collectives_smoke),
    ("verify_h2", verify_h2),
    ("pingpong", pingpong),
    ("weak_collectives", weak_collectives),
    ("strong_collectives", strong_collectives),
    ("count_allreduce", count_allreduce),
    ("count_allgather", count_allgather),
    ("count_alltoall", count_alltoall),
    ("count_halo", count_halo),
];

/// Looks up a program by name.
pub fn program(name: &str) -> Option<RankProgram> {
    REGISTRY.iter().find(|(n, _)| *n == name).map(|&(_, f)| f)
}

/// Runs `program` on the in-process thread backend — the reference the
/// process transport must match bitwise.
pub fn run_thread_reference(name: &str, n: usize, args: &[f64]) -> Option<Vec<Vec<f64>>> {
    let f = program(name)?;
    Some(run_ranks(n, move |_, comm| {
        f(comm, args).expect("rank program on thread backend")
    }))
}

/// Path of the `mqmd-rank` worker binary, assumed to live next to the
/// currently running reproduction binary (cargo puts every bin target of
/// the package in the same `target/<profile>/` directory). Integration
/// tests should use `env!("CARGO_BIN_EXE_mqmd-rank")` instead.
pub fn worker_bin() -> PathBuf {
    let mut p = std::env::current_exe().expect("current exe path");
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    p.push(format!("mqmd-rank{}", std::env::consts::EXE_SUFFIX));
    p
}

/// The H₂ verification molecule (the §5.5 degenerate-limit system).
pub fn h2_system() -> AtomicSystem {
    AtomicSystem::new(
        Vec3::splat(8.0),
        vec![Element::H, Element::H],
        vec![Vec3::new(3.3, 4.0, 4.0), Vec3::new(4.7, 4.0, 4.0)],
    )
}

/// LDC settings for the distributed H₂ verification: the cell split
/// across the bond with the paper's ξ, cheap FFT Hartree.
pub fn verify_h2_config() -> LdcConfig {
    LdcConfig {
        nd: (2, 1, 1),
        buffer: 2.0,
        mode: BoundaryMode::ldc_default(),
        hartree: HartreeSolver::Fft,
        tol_density: 1e-5,
        ..LdcConfig::default()
    }
}

/// Exercises every collective the transport implements and returns a
/// deterministic digest of all of them.
fn collectives_smoke(comm: &dyn Comm, args: &[f64]) -> CommResult<Vec<f64>> {
    let len = args.first().copied().unwrap_or(64.0) as usize;
    let (rank, size) = (comm.rank(), comm.size());
    let summed = comm.allreduce_sum(
        (0..len)
            .map(|j| ((rank + 1) * (j + 1)) as f64 * 0.5)
            .collect(),
    )?;
    let gathered = comm.allgather_concat(&[rank as f64, summed[0]])?;
    let strip = 8.min(len.max(1));
    let left: Vec<f64> = summed.iter().take(strip).copied().collect();
    let right: Vec<f64> = summed.iter().rev().take(strip).copied().collect();
    let (from_left, from_right) = comm.halo_exchange(&left, &right)?;
    let blocks: Vec<Vec<f64>> = (0..size)
        .map(|dest| vec![(rank * size + dest) as f64; 4])
        .collect();
    let transposed = comm.alltoall(&blocks)?;
    comm.barrier()?;
    let mut out = summed;
    out.extend(gathered);
    out.extend(from_left);
    out.extend(from_right);
    out.extend(transposed.into_iter().flatten());
    Ok(out)
}

/// The distributed H₂ LDC-DFT solve: returns
/// `[energy, mu, residual, scf_iterations, n_domains, density...]`.
/// Bitwise-identical across ranks and transports.
fn verify_h2(comm: &dyn Comm, _args: &[f64]) -> CommResult<Vec<f64>> {
    let sys = h2_system();
    let cfg = verify_h2_config();
    let state = solve_distributed(&sys, &cfg, comm)
        .map_err(|e| CommError::Transport(format!("verify_h2: {e}")))?;
    let mut out = vec![
        state.energy,
        state.mu,
        state.density_residual,
        state.scf_iterations as f64,
        state.n_domains as f64,
    ];
    out.extend(state.density);
    Ok(out)
}

/// Ping-pong between ranks 0 and 1: returns
/// `[small_rtt_secs, large_rtt_secs, large_bytes]` on every rank (rank 0
/// measures; the digital twin calibrates from its RESULT). args:
/// `[reps, large_len_f64s]`.
fn pingpong(comm: &dyn Comm, args: &[f64]) -> CommResult<Vec<f64>> {
    let reps = (args.first().copied().unwrap_or(32.0) as usize).max(1);
    let large_len = (args.get(1).copied().unwrap_or(65_536.0) as usize).max(1);
    let large_reps = reps.min(8);
    let mut small_rtt = 0.0;
    let mut large_rtt = 0.0;
    if comm.size() >= 2 {
        match comm.rank() {
            0 => {
                comm.send_to(1, &[0.0])?;
                comm.recv_from(1, "pingpong")?;
                let sw = Stopwatch::start();
                for _ in 0..reps {
                    comm.send_to(1, &[1.0])?;
                    comm.recv_from(1, "pingpong")?;
                }
                small_rtt = sw.seconds() / reps as f64;
                let payload = vec![2.0; large_len];
                let sw = Stopwatch::start();
                for _ in 0..large_reps {
                    comm.send_to(1, &payload)?;
                    comm.recv_from(1, "pingpong")?;
                }
                large_rtt = sw.seconds() / large_reps as f64;
            }
            1 => {
                for _ in 0..1 + reps + large_reps {
                    let v = comm.recv_from(0, "pingpong")?;
                    comm.send_to(0, &v)?;
                }
            }
            _ => {}
        }
    }
    comm.barrier()?;
    Ok(vec![small_rtt, large_rtt, (large_len * 8) as f64])
}

/// Weak-scaling collective workload: per-rank payload fixed, so total
/// traffic grows with p. args: `[elems_per_rank, rounds]`.
fn weak_collectives(comm: &dyn Comm, args: &[f64]) -> CommResult<Vec<f64>> {
    let len = (args.first().copied().unwrap_or(4096.0) as usize).max(1);
    let rounds = (args.get(1).copied().unwrap_or(8.0) as usize).max(1);
    collective_rounds(comm, len, rounds)
}

/// Strong-scaling collective workload: total payload fixed, each rank's
/// share shrinks as p grows. args: `[total_elems, rounds]`.
fn strong_collectives(comm: &dyn Comm, args: &[f64]) -> CommResult<Vec<f64>> {
    let total = (args.first().copied().unwrap_or(65_536.0) as usize).max(1);
    let rounds = (args.get(1).copied().unwrap_or(8.0) as usize).max(1);
    let len = (total / comm.size()).max(1);
    collective_rounds(comm, len, rounds)
}

/// Shared body of the scaling workloads: `rounds` allreduces of `len`
/// f64s plus one boundary halo per round — the paper's global-density +
/// BSD buffer-exchange traffic mix.
fn collective_rounds(comm: &dyn Comm, len: usize, rounds: usize) -> CommResult<Vec<f64>> {
    let rank = comm.rank();
    let mut acc = 0.0;
    for round in 0..rounds {
        let summed = comm.allreduce_sum(vec![(rank + round + 1) as f64; len])?;
        acc += summed[0];
        let strip_len = 256.min(len);
        let strip = vec![acc; strip_len];
        let (from_left, from_right) = comm.halo_exchange(&strip, &strip)?;
        acc += (from_left[0] + from_right[0]) * 1e-3;
    }
    comm.barrier()?;
    Ok(vec![acc])
}

/// Exactly `args[0]` allreduce calls of `args[1]` f64s — the router's
/// DATA-frame count must equal `calls · 2·(p−1)`.
fn count_allreduce(comm: &dyn Comm, args: &[f64]) -> CommResult<Vec<f64>> {
    let calls = (args.first().copied().unwrap_or(1.0) as usize).max(1);
    let len = (args.get(1).copied().unwrap_or(32.0) as usize).max(1);
    let mut acc = 0.0;
    for _ in 0..calls {
        acc += comm.allreduce_sum(vec![1.0; len])?[0];
    }
    Ok(vec![acc])
}

/// Exactly `args[0]` allgather calls of `args[1]` f64s per rank — the
/// gather-to-0 + tree-broadcast shape costs `2·(p−1)` DATA frames per
/// call.
fn count_allgather(comm: &dyn Comm, args: &[f64]) -> CommResult<Vec<f64>> {
    let calls = (args.first().copied().unwrap_or(1.0) as usize).max(1);
    let len = (args.get(1).copied().unwrap_or(32.0) as usize).max(1);
    let mut acc = 0.0;
    for _ in 0..calls {
        let all = comm.allgather_concat(&vec![(comm.rank() + 1) as f64; len])?;
        acc += all.iter().sum::<f64>();
    }
    Ok(vec![acc])
}

/// One pairwise all-to-all — the router's DATA-frame count must equal
/// `p·(p−1)`.
fn count_alltoall(comm: &dyn Comm, args: &[f64]) -> CommResult<Vec<f64>> {
    let len = (args.first().copied().unwrap_or(16.0) as usize).max(1);
    let (rank, size) = (comm.rank(), comm.size());
    let blocks: Vec<Vec<f64>> = (0..size)
        .map(|dest| vec![(rank + dest) as f64; len])
        .collect();
    let got = comm.alltoall(&blocks)?;
    Ok(vec![got.into_iter().flatten().sum()])
}

/// `args[1]` halo exchanges (default 1) — `2p` DATA frames each on the
/// ring (0 when p = 1).
fn count_halo(comm: &dyn Comm, args: &[f64]) -> CommResult<Vec<f64>> {
    let len = (args.first().copied().unwrap_or(16.0) as usize).max(1);
    let calls = (args.get(1).copied().unwrap_or(1.0) as usize).max(1);
    let strip = vec![comm.rank() as f64; len];
    let mut out = vec![0.0, 0.0];
    for _ in 0..calls {
        let (from_left, from_right) = comm.halo_exchange(&strip, &strip)?;
        out = vec![from_left[0], from_right[0]];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for (name, _) in REGISTRY {
            assert!(program(name).is_some());
        }
        let mut names: Vec<&str> = REGISTRY.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len());
    }

    #[test]
    fn collectives_smoke_is_deterministic_on_threads() {
        let a = run_thread_reference("collectives_smoke", 4, &[32.0]).unwrap();
        let b = run_thread_reference("collectives_smoke", 4, &[32.0]).unwrap();
        assert_eq!(a, b);
        // All ranks agree on the allreduce segment.
        assert_eq!(a[0][..32], a[3][..32]);
    }

    #[test]
    fn count_programs_run_on_threads() {
        // 2 calls, each summing 1.0 across 3 ranks → acc = 6.0.
        let out = run_thread_reference("count_allreduce", 3, &[2.0, 8.0]).unwrap();
        assert_eq!(out[0], vec![6.0]);
        // 2 allgather calls of 4 f64s from ranks 1..=3 → 2·4·(1+2+3) = 48.
        let out = run_thread_reference("count_allgather", 3, &[2.0, 4.0]).unwrap();
        assert_eq!(out[0], vec![48.0]);
        assert_eq!(out[1], out[0]);
    }
}
