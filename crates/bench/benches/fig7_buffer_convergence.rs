//! Fig 7 bench: one real DC and one real LDC solve of the divided system at
//! fixed buffer (the full sweep lives in `repro_buffer`).

use criterion::{criterion_group, criterion_main, Criterion};
use mqmd_bench::tiny_ldc_config;
use mqmd_core::global::{BoundaryMode, LdcConfig, LdcSolver};
use mqmd_md::builders::sic_supercell;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sys = sic_supercell((1, 1, 1));
    let mut g = c.benchmark_group("fig7_buffer_convergence");
    g.sample_size(10);
    g.bench_function("dc_solve_b1", |b| {
        b.iter(|| {
            let mut s = LdcSolver::new(LdcConfig {
                mode: BoundaryMode::Periodic,
                ..tiny_ldc_config()
            });
            black_box(s.solve(&sys).map(|st| st.energy).unwrap_or(f64::NAN))
        })
    });
    g.bench_function("ldc_solve_b1", |b| {
        b.iter(|| {
            let mut s = LdcSolver::new(LdcConfig {
                mode: BoundaryMode::ldc_default(),
                ..tiny_ldc_config()
            });
            black_box(s.solve(&sys).map(|st| st.energy).unwrap_or(f64::NAN))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
