//! Fig 9 bench: the hydrogen-on-demand kMC at the paper's three
//! temperatures (9a) and three particle sizes (9b).

use criterion::{criterion_group, criterion_main, Criterion};
use mqmd_chem::analysis::{run_fig9a, run_fig9b};
use mqmd_chem::kinetics::HodParams;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_hydrogen");
    g.sample_size(10);
    g.bench_function("fig9a_three_temperatures", |b| {
        b.iter(|| {
            let (points, fit) =
                run_fig9a(HodParams::default(), &[300.0, 600.0, 1500.0], 30, 10_000, 1);
            black_box((points.len(), fit.activation_ev))
        })
    });
    g.bench_function("fig9b_three_sizes", |b| {
        b.iter(|| {
            black_box(run_fig9b(HodParams::default(), &[30, 135, 441], 1500.0, 5_000, 2).len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
