//! Table 1 bench: the thread-throughput model grid, plus an honest measured
//! GEMM GFLOP/s number for this host (the analogue of the paper's
//! hardware-counter measurement).

use criterion::{criterion_group, criterion_main, Criterion};
use mqmd_linalg::gemm::dgemm;
use mqmd_linalg::Matrix;
use mqmd_parallel::machine::MachineSpec;
use mqmd_parallel::threads::ThreadModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let m = MachineSpec::bluegene_q(1);
    let model = ThreadModel::default();
    c.bench_function("table1/model_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for nodes in [4usize, 8, 16] {
                for t in [1usize, 2, 4] {
                    acc += model.sustained_gflops(&m, nodes, 4, t);
                }
            }
            black_box(acc)
        })
    });

    // Measured dense kernel throughput on this host.
    let n = 256;
    let a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j) % 7) as f64 * 0.1);
    let bm = Matrix::from_fn(n, n, |i, j| ((i + 5 * j) % 11) as f64 * 0.05);
    let mut out = Matrix::zeros(n, n);
    let mut g = c.benchmark_group("table1/measured");
    g.throughput(criterion::Throughput::Elements((2 * n * n * n) as u64));
    g.bench_function("dgemm_256", |b| {
        b.iter(|| {
            dgemm(1.0, &a, &bm, 0.0, &mut out);
            black_box(out.data()[0])
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
