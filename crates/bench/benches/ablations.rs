//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * §3.4 BLAS2 vs BLAS3: band-by-band GEMV emulation vs all-band GEMM;
//! * Eq. (4) vs Eq. (5): per-band nonlocal projector application vs the
//!   packed B.D.B^T matrix form;
//! * GSLF: multigrid vs FFT global Poisson solve;
//! * LDC boundary potential on vs off (one SCF solve each).

use criterion::{criterion_group, criterion_main, Criterion};
use mqmd_bench::tiny_ldc_config;
use mqmd_core::global::{BoundaryMode, LdcConfig, LdcSolver};
use mqmd_dft::hamiltonian::{build_projectors, ionic_local_potential, KsHamiltonian};
use mqmd_dft::pw::PlaneWaveBasis;
use mqmd_dft::species::Pseudopotential;
use mqmd_grid::UniformGrid3;
use mqmd_linalg::gemm::{zgemm, zgemm_via_gemv};
use mqmd_linalg::CMatrix;
use mqmd_md::builders::sic_supercell;
use mqmd_multigrid::{FftPoisson, PoissonMultigrid};
use mqmd_util::constants::Element;
use mqmd_util::{Complex64, Vec3};
use std::hint::black_box;

fn blas_paths(c: &mut Criterion) {
    // The paper's headline transformation: matrix-vector sequences vs one
    // matrix-matrix product.
    let np = 1024;
    let nb = 32;
    let a = CMatrix::from_fn(np, np / 8, |i, j| {
        Complex64::new(
            ((i + j) % 13) as f64 * 0.03,
            ((i * 3 + j) % 7) as f64 * 0.02,
        )
    });
    let x = CMatrix::from_fn(np / 8, nb, |i, j| {
        Complex64::new(i as f64 * 0.01, j as f64 * 0.01)
    });
    let mut g = c.benchmark_group("ablation_blas2_vs_blas3");
    g.bench_function("blas3_zgemm", |b| {
        b.iter(|| {
            let mut out = CMatrix::zeros(np, nb);
            zgemm(Complex64::ONE, &a, &x, Complex64::ZERO, &mut out);
            black_box(out.data()[0])
        })
    });
    g.bench_function("blas2_gemv_loop", |b| {
        b.iter(|| black_box(zgemm_via_gemv(&a, &x).data()[0]))
    });
    g.finish();
}

fn nonlocal_paths(c: &mut Criterion) {
    let basis = PlaneWaveBasis::new(UniformGrid3::cubic(12, 9.0), 4.0);
    let p = Pseudopotential::for_element(Element::Si);
    let atoms: Vec<(Pseudopotential, Vec3)> = (0..8)
        .map(|i| {
            (
                p,
                Vec3::new(
                    1.0 + (i % 2) as f64 * 4.0,
                    1.0 + ((i / 2) % 2) as f64 * 4.0,
                    1.0 + (i / 4) as f64 * 4.0,
                ),
            )
        })
        .collect();
    let v = ionic_local_potential(basis.grid(), &atoms);
    let nl = build_projectors(&basis, &atoms);
    let h = KsHamiltonian::new(&basis, v, nl.as_ref());
    let psi = basis.random_bands(16, 9);
    let mut g = c.benchmark_group("ablation_eq4_vs_eq5");
    g.sample_size(20);
    g.bench_function("eq5_allband_apply", |b| {
        b.iter(|| black_box(h.apply(&psi).data()[0]))
    });
    g.bench_function("eq4_band_by_band_apply", |b| {
        b.iter(|| {
            let mut acc = Complex64::ZERO;
            for n in 0..psi.cols() {
                acc += h.apply_band(&psi.col(n))[0];
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn poisson_paths(c: &mut Criterion) {
    let grid = UniformGrid3::cubic(32, 12.0);
    let rho = grid.sample(|r| {
        (std::f64::consts::TAU * r.x / 12.0).sin() * (std::f64::consts::TAU * r.y / 12.0).cos()
    });
    let mg = PoissonMultigrid::with_defaults(grid.clone());
    let fftp = FftPoisson::new(grid);
    let mut g = c.benchmark_group("ablation_gslf_poisson");
    g.sample_size(20);
    g.bench_function("multigrid", |b| {
        b.iter(|| black_box(mg.hartree(&rho).unwrap()[0]))
    });
    g.bench_function("fft", |b| b.iter(|| black_box(fftp.hartree(&rho)[0])));
    g.finish();
}

fn boundary_modes(c: &mut Criterion) {
    let sys = sic_supercell((1, 1, 1));
    let mut g = c.benchmark_group("ablation_ldc_vs_dc");
    g.sample_size(10);
    g.bench_function("dc_periodic", |b| {
        b.iter(|| {
            let mut s = LdcSolver::new(LdcConfig {
                mode: BoundaryMode::Periodic,
                ..tiny_ldc_config()
            });
            black_box(s.solve(&sys).map(|st| st.scf_iterations).unwrap_or(0))
        })
    });
    g.bench_function("ldc_density_adaptive", |b| {
        b.iter(|| {
            let mut s = LdcSolver::new(LdcConfig {
                mode: BoundaryMode::ldc_default(),
                ..tiny_ldc_config()
            });
            black_box(s.solve(&sys).map(|st| st.scf_iterations).unwrap_or(0))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    blas_paths,
    nonlocal_paths,
    poisson_paths,
    boundary_modes
);
criterion_main!(benches);
