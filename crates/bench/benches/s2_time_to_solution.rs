//! §2 bench: a full LDC-DFT solve of the 64-atom SiC workload — the
//! denominator of the atom-iteration/s metric on this host.

use criterion::{criterion_group, criterion_main, Criterion};
use mqmd_bench::tiny_ldc_config;
use mqmd_core::global::LdcSolver;
use mqmd_md::builders::sic_supercell;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // A miniature SiC cell keeps the 10-sample Criterion loop tractable;
    // the full 64-atom measurement lives in `repro_tts`.
    let sys = sic_supercell((1, 1, 1));
    let mut g = c.benchmark_group("s2_time_to_solution");
    g.sample_size(10);
    g.bench_function("ldc_full_solve_sic8", |b| {
        b.iter(|| {
            let mut solver = LdcSolver::new(tiny_ldc_config());
            black_box(solver.solve(&sys).map(|s| s.energy).unwrap_or(f64::NAN))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
