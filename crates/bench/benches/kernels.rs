//! Micro-benchmarks of the numerical substrates: FFT, GEMM, multigrid
//! V-cycle, Cholesky band orthonormalisation, Ewald, Hilbert encoding.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mqmd_dft::ewald::ewald;
use mqmd_fft::Fft3d;
use mqmd_grid::hilbert::hilbert_encode;
use mqmd_grid::UniformGrid3;
use mqmd_linalg::orthonorm::cholesky_orthonormalize;
use mqmd_linalg::CMatrix;
use mqmd_multigrid::PoissonMultigrid;
use mqmd_util::{Complex64, Vec3, Xoshiro256pp};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // 3-D FFT, the per-domain hot kernel.
    let fft = Fft3d::cubic(32);
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let field: Vec<Complex64> = (0..fft.len())
        .map(|_| Complex64::new(rng.normal(), rng.normal()))
        .collect();
    let mut g = c.benchmark_group("kernels");
    g.throughput(Throughput::Elements(fft.len() as u64));
    g.bench_function("fft3d_32cubed", |b| {
        b.iter(|| {
            let mut data = field.clone();
            fft.forward(&mut data);
            black_box(data[0])
        })
    });

    // Band orthonormalisation (overlap + Cholesky + triangular solve).
    // Random bands: structured modular fills are rank-deficient (singular
    // overlap), which Cholesky rightly rejects.
    let mut rng_psi = Xoshiro256pp::seed_from_u64(4);
    let psi0 = CMatrix::from_fn(2048, 64, |_, _| {
        Complex64::new(rng_psi.normal(), rng_psi.normal())
    });
    g.bench_function("cholesky_orthonormalise_2048x64", |b| {
        b.iter(|| {
            let mut psi = psi0.clone();
            black_box(cholesky_orthonormalize(&mut psi).unwrap())
        })
    });

    // Multigrid V-cycle Poisson solve.
    let grid = UniformGrid3::cubic(32, 10.0);
    let rho = grid.sample(|r| (std::f64::consts::TAU * r.x / 10.0).sin());
    let mg = PoissonMultigrid::with_defaults(grid);
    g.bench_function("multigrid_poisson_32cubed", |b| {
        b.iter(|| black_box(mg.hartree(&rho).unwrap()[0]))
    });

    // Ewald on a 64-atom cell.
    let mut rng2 = Xoshiro256pp::seed_from_u64(2);
    let pos: Vec<Vec3> = (0..64)
        .map(|_| {
            Vec3::new(
                rng2.uniform_in(0.0, 12.0),
                rng2.uniform_in(0.0, 12.0),
                rng2.uniform_in(0.0, 12.0),
            )
        })
        .collect();
    let q: Vec<f64> = (0..64)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    g.bench_function("ewald_64_atoms", |b| {
        b.iter(|| black_box(ewald(Vec3::splat(12.0), &pos, &q, None).energy))
    });

    // Hilbert curve encoding throughput (I/O compression hot loop).
    g.throughput(Throughput::Elements(4096));
    g.bench_function("hilbert_encode_4096", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..4096u32 {
                acc ^= hilbert_encode(i % 16, (i / 16) % 16, i / 256, 4);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
