//! Fig 6 bench: strong-scaling predictor for the 77,889-atom LiAl-water
//! workload.

use criterion::{criterion_group, criterion_main, Criterion};
use mqmd_parallel::StrongScalingModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = StrongScalingModel::fig6(30.0, 49_152);
    c.bench_function("fig6_strong_scaling/model_sweep", |b| {
        b.iter(|| black_box(model.sweep()))
    });
    eprintln!(
        "[fig6] speedup at 16x cores: {:.2} (paper 12.85), efficiency {:.3} (paper 0.803)",
        model.speedup(786_432, 49_152),
        model.efficiency(786_432, 49_152)
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
