//! Fig 5 bench: the measured per-domain kernel (the weak-scaling unit of
//! work) and the machine-model sweep built on it.

use criterion::{criterion_group, criterion_main, Criterion};
use mqmd_bench::measure_domain_solve_seconds;
use mqmd_parallel::WeakScalingModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_weak_scaling");
    g.sample_size(10);

    // The real unit of work: one domain Kohn-Sham solve on the 64-atom SiC
    // block every Blue Gene/Q core owns.
    g.bench_function("domain_solve_sic64", |b| {
        b.iter(|| black_box(measure_domain_solve_seconds(1.5, 1.4, 2)))
    });

    // The model sweep across P = 16 .. 786,432.
    let model = WeakScalingModel::fig5(100.0);
    g.bench_function("model_sweep", |b| b.iter(|| black_box(model.sweep())));
    g.finish();

    let eff = WeakScalingModel::fig5(100.0).efficiency(786_432, 16);
    eprintln!("[fig5] predicted weak-scaling efficiency at 786,432 cores: {eff:.4} (paper 0.984)");
}

criterion_group!(benches, bench);
criterion_main!(benches);
