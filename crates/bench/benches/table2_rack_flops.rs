//! Table 2 bench: sustained TFLOP/s vs rack count.

use criterion::{criterion_group, criterion_main, Criterion};
use mqmd_parallel::scaling::RackFlopsModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = RackFlopsModel::default();
    c.bench_function("table2_rack_flops/model", |b| {
        b.iter(|| {
            black_box(
                model.sustained_tflops(1) + model.sustained_tflops(2) + model.sustained_tflops(48),
            )
        })
    });
    eprintln!(
        "[table2] 1/2/48 racks: {:.1}/{:.1}/{:.0} TFLOP/s (paper 113.2/226.3/5081)",
        model.sustained_tflops(1),
        model.sustained_tflops(2),
        model.sustained_tflops(48)
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
