//! §4.4 bench: SFC trajectory compression and the collective-I/O model.

use criterion::{criterion_group, criterion_main, Criterion};
use mqmd_md::builders::sic_supercell;
use mqmd_md::io::CompressedFrame;
use mqmd_parallel::io::CollectiveIoModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sys = sic_supercell((4, 4, 4));
    let mut g = c.benchmark_group("s44_io");
    g.bench_function("sfc_compress_512", |b| {
        b.iter(|| black_box(CompressedFrame::compress(&sys, 12).compressed_bytes()))
    });
    let frame = CompressedFrame::compress(&sys, 12);
    g.bench_function("sfc_decompress_512", |b| {
        b.iter(|| black_box(frame.decompress().unwrap().len()))
    });
    let model = CollectiveIoModel::mira();
    g.bench_function("collective_io_group_sweep", |b| {
        b.iter(|| black_box(model.optimal_group(786_432, 1.0e6)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
