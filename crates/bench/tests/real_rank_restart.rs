//! End-to-end restart drills against the real `mqmd-rank` worker binary
//! (resolved via `CARGO_BIN_EXE_mqmd-rank`, so cargo rebuilds it in the
//! same profile): a seeded kill mid-run must be healed by in-place
//! respawn + epoch-fenced replay, bitwise-equal to a fault-free run, and
//! a rank dying past its retry budget must land in quarantine while the
//! survivors finish on the shrunk communicator.

use mqmd_bench::real_ranks::run_thread_reference;
use mqmd_parallel::process::{run_processes, KillSpec, ProcessOpts, RecoveryOpts};
use std::path::Path;
use std::time::Duration;

fn worker() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_mqmd-rank"))
}

fn drill(program: &str, n: usize, args: &[f64], kill: KillSpec, rec: RecoveryOpts) {
    let reference = run_thread_reference(program, n, args).expect("program registered");
    let run = run_processes(
        worker(),
        program,
        n,
        ProcessOpts {
            deadline: Duration::from_secs(120),
            args: args.to_vec(),
            kill: Some(kill),
            recovery: Some(rec),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{program}: run under kill failed instead of healing: {e}"));
    assert!(
        run.recovery.restarts >= 1,
        "{program}: kill of rank {} produced no respawn (data_frames {}, stale {:?})",
        kill.rank,
        run.data_frames,
        run.stale_frames
    );
    assert_eq!(
        run.results, reference,
        "{program}: healed run is not bitwise-equal to the fault-free reference"
    );
    assert_eq!(run.quarantined, Vec::<usize>::new());
    assert_eq!(run.recovery.detect_ms.len(), run.recovery.restarts as usize);
    assert_eq!(
        run.recovery.respawn_ms.len(),
        run.recovery.restarts as usize
    );
    assert_eq!(run.recovery.rejoin_ms.len(), run.recovery.restarts as usize);
}

#[test]
fn killed_rank_mid_collective_heals_bitwise() {
    for victim in [0, 2] {
        drill(
            "count_allreduce",
            4,
            &[50.0, 32.0],
            KillSpec {
                rank: victim,
                after_data_frames: 2,
                repeat: 1,
            },
            RecoveryOpts::default(),
        );
    }
    drill(
        "count_allgather",
        4,
        &[50.0, 32.0],
        KillSpec {
            rank: 0,
            after_data_frames: 2,
            repeat: 1,
        },
        RecoveryOpts::default(),
    );
    drill(
        "count_halo",
        4,
        &[16.0, 40.0],
        KillSpec {
            rank: 0,
            after_data_frames: 2,
            repeat: 1,
        },
        RecoveryOpts::default(),
    );
}

#[test]
fn killed_rank_mid_scf_heals_bitwise() {
    drill(
        "verify_h2",
        4,
        &[],
        KillSpec {
            rank: 1,
            after_data_frames: 30,
            repeat: 1,
        },
        RecoveryOpts::default(),
    );
}

#[test]
fn repeated_deaths_exhaust_the_budget_into_quarantine() {
    let reference = run_thread_reference("collectives_smoke", 3, &[64.0]).expect("registered");
    let run = run_processes(
        worker(),
        "collectives_smoke",
        4,
        ProcessOpts {
            deadline: Duration::from_secs(120),
            args: vec![64.0],
            kill: Some(KillSpec {
                rank: 2,
                after_data_frames: 2,
                repeat: 3,
            }),
            recovery: Some(RecoveryOpts {
                max_restarts: 2,
                ..RecoveryOpts::default()
            }),
            ..Default::default()
        },
    )
    .expect("budget exhaustion must degrade typed, not abort the run");
    assert_eq!(run.quarantined, vec![2]);
    assert_eq!(run.recovery.quarantines, 1);
    assert_eq!(run.recovery.restarts, 2, "both budgeted respawns consumed");
    assert!(run.results[2].is_empty(), "quarantined slot stays empty");
    // Survivors (physical 0, 1, 3 → logical 0, 1, 2) finish the program
    // on the shrunk communicator, bitwise-equal to a 3-rank reference.
    for (logical, &physical) in [0usize, 1, 3].iter().enumerate() {
        assert_eq!(run.results[physical], reference[logical]);
    }
}
