//! Exit-code contract of the `repro_compare` perf gate: 0 on identical
//! profiles, 1 when a kernel's per-call mean is inflated 2×, 2 on
//! invalid input — exercised against the real binary, as CI runs it.

use std::path::PathBuf;
use std::process::Command;

fn profile_fixture(gemm_seconds: f64) -> String {
    format!(
        r#"{{
  "schema": "mqmd-profile-v2",
  "kernels": {{
    "gemm": {{
      "calls": 10, "seconds": {gemm_seconds}, "flops": 1000000,
      "p50_secs": 0.1, "p95_secs": 0.12, "p99_secs": 0.13,
      "std_err_secs": 0.001
    }},
    "fft": {{
      "calls": 100, "seconds": 0.5, "flops": 500000,
      "p50_secs": 0.005, "p95_secs": 0.006, "p99_secs": 0.007,
      "std_err_secs": 0.0001
    }}
  }}
}}"#
    )
}

fn write_fixture(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("mqmd_compare_gate_{name}"));
    std::fs::write(&path, content).expect("write fixture");
    path
}

fn run_compare(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro_compare"))
        .args(args)
        .output()
        .expect("run repro_compare");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

#[test]
fn identical_profiles_exit_zero() {
    let base = write_fixture("base_ok.json", &profile_fixture(1.0));
    let cand = write_fixture("cand_ok.json", &profile_fixture(1.0));
    let (code, text) = run_compare(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(code, 0, "output:\n{text}");
    assert!(text.contains("no regressions"), "output:\n{text}");
}

#[test]
fn doubled_kernel_exits_nonzero() {
    let base = write_fixture("base_2x.json", &profile_fixture(1.0));
    let cand = write_fixture("cand_2x.json", &profile_fixture(2.0));
    let (code, text) = run_compare(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(code, 1, "output:\n{text}");
    assert!(text.contains("REGRESSED"), "output:\n{text}");
    assert!(text.contains("gemm"), "output:\n{text}");

    // A generous relative tolerance waves the same inflation through —
    // the CI knob for noisy shared runners.
    let (code, text) = run_compare(&[
        base.to_str().unwrap(),
        cand.to_str().unwrap(),
        "--rel-tol",
        "3.0",
    ]);
    assert_eq!(code, 0, "output:\n{text}");
}

#[test]
fn invalid_input_exits_two() {
    let bad = write_fixture("bad.json", "not json at all");
    let ok = write_fixture("ok.json", &profile_fixture(1.0));
    let (code, _) = run_compare(&[bad.to_str().unwrap(), ok.to_str().unwrap()]);
    assert_eq!(code, 2);
    let (code, _) = run_compare(&[ok.to_str().unwrap(), "/nonexistent/profile.json"]);
    assert_eq!(code, 2);
    let (code, _) = run_compare(&[ok.to_str().unwrap()]);
    assert_eq!(code, 2);
    let (code, _) = run_compare(&[
        ok.to_str().unwrap(),
        ok.to_str().unwrap(),
        "--rel-tol",
        "not-a-number",
    ]);
    assert_eq!(code, 2);
}
