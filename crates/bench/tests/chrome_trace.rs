//! End-to-end check of the telemetry pipeline on a *real* traced QMD
//! step: run H2 through the LDC solver with tracing + events on, export
//! the recorded stream as a Chrome trace, and verify the document parses
//! as valid JSON with properly nested B/E pairs per lane — the ISSUE's
//! acceptance criterion for the timeline exporter.

use mqmd_core::global::{BoundaryMode, HartreeSolver, LdcConfig, LdcSolver};
use mqmd_core::qmd::QmdDriver;
use mqmd_md::thermostat::Berendsen;
use mqmd_md::AtomicSystem;
use mqmd_util::constants::Element;
use mqmd_util::metrics::{parse_json, Json};
use mqmd_util::{chrometrace, events, trace, Vec3, Xoshiro256pp};

#[test]
fn traced_qmd_step_exports_valid_chrome_trace() {
    trace::set_enabled(true);
    trace::take();
    events::set_enabled(true);
    let _ = events::drain();

    let mut sys = AtomicSystem::new(
        Vec3::splat(8.0),
        vec![Element::H, Element::H],
        vec![Vec3::new(3.3, 4.0, 4.0), Vec3::new(4.7, 4.0, 4.0)],
    );
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    sys.thermalize(300.0, &mut rng);
    let mut solver = LdcSolver::new(LdcConfig {
        nd: (1, 1, 1),
        buffer: 0.0,
        mode: BoundaryMode::Periodic,
        hartree: HartreeSolver::Fft,
        ..Default::default()
    });
    let mut driver: QmdDriver<Berendsen> = QmdDriver::new(10.0, None);
    let report = driver.run(&mut sys, &mut solver, 1);
    assert_eq!(report.steps, 1);

    trace::set_enabled(false);
    trace::take();
    events::set_enabled(false);
    let (records, dropped) = events::drain();
    assert_eq!(dropped, 0, "one tiny step must fit the default sink");
    assert!(!records.is_empty());

    // Exporter output survives its own serialiser and the strict nesting
    // validator.
    let doc = chrometrace::chrome_trace(&records);
    let text = doc.pretty();
    let back = parse_json(&text).expect("timeline must be valid JSON");
    let checked = chrometrace::validate(&back).expect("B/E pairs must nest per lane");
    assert!(checked >= 2, "at least the qmd_step span pair");

    // The real step's span structure is present: a qmd_step B/E pair and
    // SCF-iteration instants, all on named lanes.
    let events_arr = back.get("traceEvents").unwrap().as_arr().unwrap();
    let phase = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap_or("").to_string();
    let name = |e: &Json| {
        e.get("name")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string()
    };
    assert!(events_arr
        .iter()
        .any(|e| phase(e) == "B" && name(e) == "qmd_step"));
    assert!(events_arr
        .iter()
        .any(|e| phase(e) == "E" && name(e) == "qmd_step"));
    assert!(events_arr
        .iter()
        .any(|e| phase(e) == "i" && name(e) == "scf_iteration"));
    assert!(events_arr
        .iter()
        .any(|e| phase(e) == "i" && name(e) == "qmd_step"));
    assert!(events_arr
        .iter()
        .any(|e| phase(e) == "M" && name(e) == "thread_name"));

    // Every scf_iter span nests inside the qmd_step on its lane — implied
    // by validate(), but check the count matches the solver's report too.
    let scf_begins = events_arr
        .iter()
        .filter(|e| phase(e) == "B" && name(e) == "scf_iter")
        .count();
    assert_eq!(scf_begins, report.scf_iterations);

    // The JSONL encoding of the same records parses line by line.
    let jsonl = events::to_jsonl(&records);
    for line in jsonl.lines() {
        parse_json(line).expect("each JSONL line is one valid object");
    }
}
