//! The tentpole acceptance gate: **one rank program, two transports,
//! identical bits**. Every named program must return byte-identical
//! RESULT payloads from the in-process thread backend and from real
//! `mqmd-rank` worker processes over TCP — including the distributed
//! H₂ LDC-DFT solve, whose payload embeds the full global density and
//! total energy.
//!
//! Lives in `crates/bench/tests` because `CARGO_BIN_EXE_<name>` is only
//! defined for tests of the package that builds the binary.

use mqmd_bench::real_ranks::run_thread_reference;
use mqmd_parallel::process::{run_processes, ProcessOpts};
use std::path::Path;
use std::time::Duration;

fn worker() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_mqmd-rank"))
}

fn opts(args: &[f64]) -> ProcessOpts {
    ProcessOpts {
        deadline: Duration::from_secs(120),
        args: args.to_vec(),
        ..Default::default()
    }
}

/// Runs `program` on both transports at `n` ranks and asserts bitwise
/// equality of all per-rank results.
fn assert_transports_agree(program: &str, n: usize, args: &[f64]) {
    let reference = run_thread_reference(program, n, args).expect("registered program");
    let run = run_processes(worker(), program, n, opts(args))
        .unwrap_or_else(|e| panic!("{program} over processes: {e}"));
    assert_eq!(run.results.len(), n);
    for (rank, (process, thread)) in run.results.iter().zip(&reference).enumerate() {
        assert_eq!(
            process.len(),
            thread.len(),
            "{program} rank {rank}: payload length"
        );
        for (i, (a, b)) in process.iter().zip(thread).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{program} rank {rank} element {i}: {a} (process) vs {b} (thread)"
            );
        }
    }
}

#[test]
fn collectives_smoke_is_bitwise_across_transports() {
    for n in [1, 2, 4] {
        assert_transports_agree("collectives_smoke", n, &[48.0]);
    }
}

#[test]
fn four_rank_h2_solve_is_bitwise_across_transports() {
    // The acceptance criterion: a 4-rank real-process run of the H₂
    // verification system produces bitwise-identical global density and
    // energies to the in-process executor running the same program.
    assert_transports_agree("verify_h2", 4, &[]);
}

#[test]
fn scaling_workloads_are_bitwise_across_transports() {
    assert_transports_agree("weak_collectives", 4, &[256.0, 3.0]);
    assert_transports_agree("strong_collectives", 4, &[1024.0, 3.0]);
}
