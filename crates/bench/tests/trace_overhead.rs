//! Smoke test: enabling tracing must cost < 5% on the GEMM and FFT hot
//! kernels.
//!
//! The span guard is one relaxed atomic load when disabled and a handful of
//! atomic adds when enabled, amortised over whole kernel invocations — so
//! even the 5% budget is generous. Timing noise is tamed by comparing
//! min-of-several batch times and allowing a few attempts before declaring
//! failure.

use mqmd_fft::Fft3d;
use mqmd_linalg::gemm::dgemm;
use mqmd_linalg::Matrix;
use mqmd_util::{trace, Complex64};
use std::sync::Mutex;
use std::time::Instant;

/// Serialises the tests in this binary: both toggle the global tracing
/// flag, so running them concurrently would corrupt each other's timings.
static GATE: Mutex<()> = Mutex::new(());

fn min_batch_seconds(mut batch: impl FnMut(), trials: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        batch();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Measures `batch` with tracing off then on; true when the enabled run is
/// within `budget` of the disabled one.
fn within_overhead_budget(batch: &mut impl FnMut(), budget: f64) -> (bool, f64) {
    trace::set_enabled(false);
    batch(); // warm caches outside the timed region
    let off = min_batch_seconds(&mut *batch, 5);
    trace::set_enabled(true);
    let on = min_batch_seconds(&mut *batch, 5);
    trace::set_enabled(false);
    trace::take();
    let ratio = on / off;
    (ratio <= 1.0 + budget, ratio)
}

fn assert_overhead_below(mut batch: impl FnMut(), what: &str) {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Timing smoke test: retry a few times so a scheduler hiccup cannot
    // fail the suite, but a systematic >5% slowdown always does.
    let mut last = 0.0;
    for _ in 0..4 {
        let (ok, ratio) = within_overhead_budget(&mut batch, 0.05);
        if ok {
            return;
        }
        last = ratio;
    }
    panic!("{what}: tracing overhead persisted above 5% (last ratio {last:.3})");
}

#[test]
fn gemm_tracing_overhead_below_five_percent() {
    let n = 96;
    let a = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) % 17) as f64 * 0.1);
    let b = Matrix::from_fn(n, n, |i, j| ((i + j * 5) % 11) as f64 * 0.2);
    let mut c = Matrix::zeros(n, n);
    assert_overhead_below(
        || {
            for _ in 0..6 {
                dgemm(1.0, &a, &b, 0.0, &mut c);
            }
            std::hint::black_box(&c);
        },
        "dgemm 96x96x96",
    );
}

#[test]
fn fft_tracing_overhead_below_five_percent() {
    let plan = Fft3d::cubic(32);
    let mut field: Vec<Complex64> = (0..plan.len())
        .map(|i| Complex64::new((i % 7) as f64 * 0.3, (i % 5) as f64 * -0.2))
        .collect();
    assert_overhead_below(
        || {
            for _ in 0..4 {
                plan.forward(&mut field);
                plan.inverse(&mut field);
            }
            std::hint::black_box(&field);
        },
        "fft 32^3 round trip",
    );
}
