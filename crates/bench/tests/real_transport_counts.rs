//! Property test pinning the collective message algebra **on the real
//! wire**: the parent router counts every DATA frame it forwards, and
//! those observed counts must equal the closed forms the cost model
//! prices — allreduce `2·(p−1)` (binomial reduce + tree broadcast),
//! pairwise all-to-all `p·(p−1)`, ring halo `2p`. The byte counts
//! follow as `frames · payload · 8`.

use mqmd_parallel::process::{run_processes, ProcessOpts};
use std::path::Path;
use std::time::Duration;

fn worker() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_mqmd-rank"))
}

fn run(program: &str, n: usize, args: &[f64]) -> mqmd_parallel::process::ProcessRun {
    run_processes(
        worker(),
        program,
        n,
        ProcessOpts {
            deadline: Duration::from_secs(120),
            args: args.to_vec(),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{program} at p = {n}: {e}"))
}

#[test]
fn allreduce_puts_2p_minus_2_frames_on_the_wire() {
    let len = 24usize;
    for p in [2usize, 3, 4, 5] {
        for calls in [1u64, 3] {
            let out = run("count_allreduce", p, &[calls as f64, len as f64]);
            let expect = calls * 2 * (p as u64 - 1);
            assert_eq!(
                out.data_frames, expect,
                "allreduce p={p} calls={calls}: observed frames"
            );
            assert_eq!(
                out.data_bytes,
                expect * (len * 8) as u64,
                "allreduce p={p} calls={calls}: observed bytes"
            );
        }
    }
}

#[test]
fn alltoall_puts_p_times_p_minus_1_frames_on_the_wire() {
    let len = 16usize;
    for p in [2usize, 3, 4, 5] {
        let out = run("count_alltoall", p, &[len as f64]);
        let expect = (p * (p - 1)) as u64;
        assert_eq!(out.data_frames, expect, "alltoall p={p}: observed frames");
        assert_eq!(
            out.data_bytes,
            expect * (len * 8) as u64,
            "alltoall p={p}: observed bytes"
        );
    }
}

#[test]
fn halo_exchange_puts_2p_frames_on_the_ring() {
    let len = 16usize;
    for p in [2usize, 3, 4, 5] {
        let out = run("count_halo", p, &[len as f64]);
        let expect = 2 * p as u64;
        assert_eq!(out.data_frames, expect, "halo p={p}: observed frames");
        assert_eq!(
            out.data_bytes,
            expect * (len * 8) as u64,
            "halo p={p}: observed bytes"
        );
    }
}

#[test]
fn single_rank_runs_put_nothing_on_the_wire() {
    for program in ["count_allreduce", "count_alltoall", "count_halo"] {
        let out = run(program, 1, &[8.0]);
        assert_eq!(out.data_frames, 0, "{program} at p = 1");
        assert_eq!(out.data_bytes, 0, "{program} at p = 1");
    }
}
