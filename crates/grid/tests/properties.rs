//! Property-based tests of the DC geometry: the partition-of-unity sum
//! rule over random decompositions, Hilbert-curve bijectivity/adjacency,
//! octree reductions, and grid interpolation invariants.

use mqmd_grid::hilbert::{hilbert_decode, hilbert_encode};
use mqmd_grid::octree::Octree;
use mqmd_grid::{DomainDecomposition, UniformGrid3};
use mqmd_util::{Vec3, Xoshiro256pp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn partition_of_unity_holds_for_random_decompositions(
        l in 6.0..30.0f64,
        ndx in 1usize..4, ndy in 1usize..4, ndz in 1usize..4,
        buffer in 0.0..3.0f64,
        seed in any::<u64>(),
    ) {
        let dd = DomainDecomposition::new(Vec3::splat(l), (ndx, ndy, ndz), buffer);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..20 {
            let r = Vec3::new(
                rng.uniform_in(-l, 2.0 * l),
                rng.uniform_in(-l, 2.0 * l),
                rng.uniform_in(-l, 2.0 * l),
            );
            let sum: f64 = dd.support_at(r).iter().map(|&(_, w)| w).sum();
            prop_assert!((sum - 1.0).abs() < 1e-10, "sum {} at {:?}", sum, r);
        }
    }

    #[test]
    fn exactly_one_core_owner(
        l in 6.0..30.0f64,
        nd in 1usize..4,
        buffer in 0.0..2.0f64,
        seed in any::<u64>(),
    ) {
        let dd = DomainDecomposition::new(Vec3::splat(l), (nd, nd, nd), buffer);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..20 {
            let r = Vec3::new(rng.uniform_in(0.0, l), rng.uniform_in(0.0, l), rng.uniform_in(0.0, l));
            let owners = dd.domains().iter().filter(|d| d.core_contains(r)).count();
            prop_assert_eq!(owners, 1);
        }
    }

    #[test]
    fn domain_local_round_trip(
        l in 8.0..24.0f64,
        nd in 1usize..4,
        buffer in 0.0..2.0f64,
        seed in any::<u64>(),
    ) {
        let dd = DomainDecomposition::new(Vec3::splat(l), (nd, nd, nd), buffer);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for d in dd.domains() {
            let dl = d.domain_len();
            let local = Vec3::new(
                rng.uniform_in(0.0, dl.x * 0.999),
                rng.uniform_in(0.0, dl.y * 0.999),
                rng.uniform_in(0.0, dl.z * 0.999),
            );
            let g = d.to_global(local);
            let back = d.to_local(g);
            prop_assert!(back.is_some());
            prop_assert!((back.unwrap() - local).norm() < 1e-8);
        }
    }

    #[test]
    fn hilbert_round_trip_random(bits in 1u32..8, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let n = 1u64 << bits;
        for _ in 0..50 {
            let x = rng.below(n) as u32;
            let y = rng.below(n) as u32;
            let z = rng.below(n) as u32;
            let h = hilbert_encode(x, y, z, bits);
            prop_assert!(h < 1u64 << (3 * bits));
            prop_assert_eq!(hilbert_decode(h, bits), (x, y, z));
        }
    }

    #[test]
    fn hilbert_adjacency_random_windows(bits in 2u32..6, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let n = 1u64 << (3 * bits);
        for _ in 0..30 {
            let h = rng.below(n - 1);
            let a = hilbert_decode(h, bits);
            let b = hilbert_decode(h + 1, bits);
            let d = a.0.abs_diff(b.0) + a.1.abs_diff(b.1) + a.2.abs_diff(b.2);
            prop_assert_eq!(d, 1, "step {} -> {}", h, h + 1);
        }
    }

    #[test]
    fn octree_reduce_equals_direct_sum(levels in 0usize..4, seed in any::<u64>()) {
        let n = 1usize << levels;
        let t = Octree::new(n);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let leaves: Vec<f64> = (0..t.nodes_at_level(0)).map(|_| rng.normal()).collect();
        let tree = t.reduce(&leaves, |a, b| a + b);
        let direct: f64 = leaves.iter().sum();
        prop_assert!((tree - direct).abs() < 1e-9 * (1.0 + direct.abs()));
    }

    #[test]
    fn interpolation_bounded_by_field_extrema(
        n in 4usize..12,
        l in 2.0..20.0f64,
        seed in any::<u64>(),
    ) {
        let g = UniformGrid3::cubic(n, l);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let field: Vec<f64> = (0..g.len()).map(|_| rng.normal()).collect();
        let lo = field.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = field.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for _ in 0..20 {
            let r = Vec3::new(rng.uniform_in(-l, 2.0 * l), rng.uniform_in(-l, 2.0 * l), rng.uniform_in(-l, 2.0 * l));
            let v = g.interpolate(&field, r);
            prop_assert!(v >= lo - 1e-10 && v <= hi + 1e-10, "{} outside [{}, {}]", v, lo, hi);
        }
    }
}
