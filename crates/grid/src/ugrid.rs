//! Periodic uniform real-space grid over an orthorhombic cell.

use mqmd_util::Vec3;

/// A uniform grid of `(nx, ny, nz)` points over a periodic orthorhombic cell
/// of side lengths `(lx, ly, lz)` Bohr, origin at the cell corner.
///
/// Point `(ix, iy, iz)` sits at `(ix·hx, iy·hy, iz·hz)`; flat storage is
/// z-fastest, matching `mqmd-fft::Fft3d`.
#[derive(Clone, Debug, PartialEq)]
pub struct UniformGrid3 {
    nx: usize,
    ny: usize,
    nz: usize,
    lx: f64,
    ly: f64,
    lz: f64,
}

impl UniformGrid3 {
    /// Creates a grid.
    ///
    /// # Panics
    /// Panics on zero dimensions or non-positive cell lengths.
    pub fn new((nx, ny, nz): (usize, usize, usize), (lx, ly, lz): (f64, f64, f64)) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid dims must be positive");
        assert!(
            lx > 0.0 && ly > 0.0 && lz > 0.0,
            "cell lengths must be positive"
        );
        Self {
            nx,
            ny,
            nz,
            lx,
            ly,
            lz,
        }
    }

    /// Creates a cubic grid of `n³` points over an `l³` cell.
    pub fn cubic(n: usize, l: f64) -> Self {
        Self::new((n, n, n), (l, l, l))
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Cell side lengths `(lx, ly, lz)` in Bohr.
    pub fn lengths(&self) -> (f64, f64, f64) {
        (self.lx, self.ly, self.lz)
    }

    /// Cell side lengths as a vector.
    pub fn lengths_vec(&self) -> Vec3 {
        Vec3::new(self.lx, self.ly, self.lz)
    }

    /// Grid spacings `(hx, hy, hz)`.
    pub fn spacing(&self) -> (f64, f64, f64) {
        (
            self.lx / self.nx as f64,
            self.ly / self.ny as f64,
            self.lz / self.nz as f64,
        )
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Returns true only for an (impossible) empty grid; kept for clippy's
    /// `len_without_is_empty` lint.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cell volume in Bohr³.
    pub fn volume(&self) -> f64 {
        self.lx * self.ly * self.lz
    }

    /// Volume element per grid point (the quadrature weight for
    /// [`Self::integrate`]).
    pub fn dv(&self) -> f64 {
        self.volume() / self.len() as f64
    }

    /// Flat index of `(ix, iy, iz)`.
    #[inline(always)]
    pub fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny && iz < self.nz);
        (ix * self.ny + iy) * self.nz + iz
    }

    /// Inverse of [`Self::index`].
    #[inline(always)]
    pub fn coords(&self, flat: usize) -> (usize, usize, usize) {
        let iz = flat % self.nz;
        let iy = (flat / self.nz) % self.ny;
        let ix = flat / (self.ny * self.nz);
        (ix, iy, iz)
    }

    /// Flat index with periodic wrapping of possibly-negative indices.
    #[inline(always)]
    pub fn index_wrapped(&self, ix: i64, iy: i64, iz: i64) -> usize {
        let ix = ix.rem_euclid(self.nx as i64) as usize;
        let iy = iy.rem_euclid(self.ny as i64) as usize;
        let iz = iz.rem_euclid(self.nz as i64) as usize;
        self.index(ix, iy, iz)
    }

    /// Position of grid point `(ix, iy, iz)`.
    #[inline]
    pub fn position(&self, ix: usize, iy: usize, iz: usize) -> Vec3 {
        let (hx, hy, hz) = self.spacing();
        Vec3::new(ix as f64 * hx, iy as f64 * hy, iz as f64 * hz)
    }

    /// Integrates a sampled field over the cell (Riemann sum, exact for the
    /// band-limited fields the FFT machinery produces).
    pub fn integrate(&self, field: &[f64]) -> f64 {
        assert_eq!(field.len(), self.len());
        field.iter().sum::<f64>() * self.dv()
    }

    /// Trilinear periodic interpolation of a sampled field at an arbitrary
    /// position (Bohr, wrapped into the cell).
    pub fn interpolate(&self, field: &[f64], r: Vec3) -> f64 {
        assert_eq!(field.len(), self.len());
        let (hx, hy, hz) = self.spacing();
        let fx = (r.x / hx).rem_euclid(self.nx as f64);
        let fy = (r.y / hy).rem_euclid(self.ny as f64);
        let fz = (r.z / hz).rem_euclid(self.nz as f64);
        let (ix, iy, iz) = (fx.floor() as i64, fy.floor() as i64, fz.floor() as i64);
        let (tx, ty, tz) = (fx - ix as f64, fy - iy as f64, fz - iz as f64);
        let mut acc = 0.0;
        for (dx, wx) in [(0i64, 1.0 - tx), (1, tx)] {
            for (dy, wy) in [(0i64, 1.0 - ty), (1, ty)] {
                for (dz, wz) in [(0i64, 1.0 - tz), (1, tz)] {
                    let w = wx * wy * wz;
                    if w != 0.0 {
                        acc += w * field[self.index_wrapped(ix + dx, iy + dy, iz + dz)];
                    }
                }
            }
        }
        acc
    }

    /// Evaluates a function on every grid point into a flat field.
    pub fn sample(&self, mut f: impl FnMut(Vec3) -> f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        for ix in 0..self.nx {
            for iy in 0..self.ny {
                for iz in 0..self.nz {
                    out.push(f(self.position(ix, iy, iz)));
                }
            }
        }
        out
    }

    /// Minimum-image distance between two positions under this cell's
    /// periodicity.
    pub fn min_image_distance(&self, a: Vec3, b: Vec3) -> f64 {
        (a - b).min_image(self.lengths_vec()).norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let g = UniformGrid3::new((4, 6, 8), (1.0, 2.0, 3.0));
        for flat in 0..g.len() {
            let (ix, iy, iz) = g.coords(flat);
            assert_eq!(g.index(ix, iy, iz), flat);
        }
    }

    #[test]
    fn wrapped_indexing() {
        let g = UniformGrid3::cubic(4, 1.0);
        assert_eq!(g.index_wrapped(-1, 0, 0), g.index(3, 0, 0));
        assert_eq!(g.index_wrapped(4, 5, -3), g.index(0, 1, 1));
    }

    #[test]
    fn integrate_constant_gives_volume() {
        let g = UniformGrid3::new((8, 8, 8), (2.0, 3.0, 4.0));
        let ones = vec![1.0; g.len()];
        assert!((g.integrate(&ones) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn interpolation_exact_on_grid_points() {
        let g = UniformGrid3::cubic(8, 5.0);
        let field = g.sample(|r| (r.x * 1.3).sin() + r.y - r.z * 0.5);
        for ix in 0..8 {
            for iy in 0..8 {
                for iz in 0..8 {
                    let r = g.position(ix, iy, iz);
                    let v = g.interpolate(&field, r);
                    assert!((v - field[g.index(ix, iy, iz)]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn interpolation_linear_function_exact() {
        // Trilinear interpolation reproduces (periodic-safe) linear functions
        // exactly between nodes — test away from the wrap seam.
        let g = UniformGrid3::cubic(16, 8.0);
        let field = g.sample(|r| 2.0 * r.x - r.y + 0.5 * r.z);
        let r = Vec3::new(1.3, 2.7, 3.1);
        let v = g.interpolate(&field, r);
        assert!((v - (2.0 * r.x - r.y + 0.5 * r.z)).abs() < 1e-12);
    }

    #[test]
    fn interpolation_periodic_wrap() {
        let g = UniformGrid3::cubic(8, 4.0);
        let field = g.sample(|r| (std::f64::consts::TAU * r.x / 4.0).cos());
        // A point just outside the cell must equal the wrapped point inside.
        let a = g.interpolate(&field, Vec3::new(4.1, 0.0, 0.0));
        let b = g.interpolate(&field, Vec3::new(0.1, 0.0, 0.0));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn dv_times_points_is_volume() {
        let g = UniformGrid3::new((3, 5, 7), (1.5, 2.5, 3.5));
        assert!((g.dv() * g.len() as f64 - g.volume()).abs() < 1e-12);
    }

    #[test]
    fn min_image_distance_wraps() {
        let g = UniformGrid3::cubic(8, 10.0);
        let d = g.min_image_distance(Vec3::new(0.5, 0.0, 0.0), Vec3::new(9.5, 0.0, 0.0));
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        UniformGrid3::new((0, 4, 4), (1.0, 1.0, 1.0));
    }
}
