//! # mqmd-grid
//!
//! Real-space grids and the divide-and-conquer domain geometry of the SC14
//! paper (Fig 1): the periodic global cell Ω is covered by non-overlapping
//! cores Ω₀α, each extended by a buffer layer Γα into an overlapping domain
//! Ωα = Ω₀α ∪ Γα; domain support functions pα(r) form a partition of unity
//! (Σα pα(r) = 1 exactly) through which global quantities such as the
//! electron density are assembled from domain-local ones (Eq. (b) of Fig 2).
//!
//! * [`ugrid::UniformGrid3`] — periodic uniform real-space grid over an
//!   orthorhombic cell, with trilinear interpolation;
//! * [`domain`] — DC domain decomposition, core/buffer bookkeeping,
//!   global↔domain field transfer;
//! * [`support`] — partition-of-unity support functions;
//! * [`octree`] — locality-preserving octree used for hierarchical (tree)
//!   reductions of domain data (paper Fig 1(a) and §3.2);
//! * [`hilbert`] — Morton and Hilbert space-filling curves backing the §4.4
//!   trajectory-compression scheme.

pub mod domain;
pub mod hilbert;
pub mod octree;
pub mod support;
pub mod ugrid;

pub use domain::{Domain, DomainDecomposition};
pub use ugrid::UniformGrid3;
