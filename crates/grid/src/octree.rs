//! Locality-preserving octree over the domain lattice.
//!
//! The paper's multigrid and global reductions ride on "the locality
//! preserving octree data structure" (§3.2, Fig 1(a)): domain-level data is
//! combined pairwise-per-axis up a tree whose upper levels carry
//! progressively less data — the property that makes the algorithm
//! *metascalable* on tree networks (§7). This module provides that tree over
//! an `n³` domain lattice (n a power of two) together with hierarchical
//! reduction and broadcast, and reports the per-level message counts the
//! communication model in `mqmd-parallel` consumes.

/// An octree over an `n × n × n` lattice of cells, `n` a power of two.
#[derive(Clone, Debug)]
pub struct Octree {
    n: usize,
    levels: usize,
}

impl Octree {
    /// Builds the octree for an `n³` lattice.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "octree lattice must be a power of two, got {n}"
        );
        Self {
            n,
            levels: n.trailing_zeros() as usize,
        }
    }

    /// Lattice side length.
    pub fn lattice(&self) -> usize {
        self.n
    }

    /// Number of levels below the root (root = level `levels()`, leaves =
    /// level 0).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of nodes at a given level (level 0 = leaves).
    pub fn nodes_at_level(&self, level: usize) -> usize {
        assert!(level <= self.levels);
        let side = self.n >> level;
        side * side * side
    }

    /// Total node count over all levels.
    pub fn total_nodes(&self) -> usize {
        (0..=self.levels).map(|l| self.nodes_at_level(l)).sum()
    }

    /// Morton (Z-order) leaf index of lattice cell `(x, y, z)` — children of
    /// any node are contiguous in this ordering, which is what preserves
    /// locality in memory and on the interconnect.
    pub fn leaf_index(&self, x: usize, y: usize, z: usize) -> usize {
        assert!(x < self.n && y < self.n && z < self.n);
        let mut idx = 0usize;
        for bit in 0..self.levels {
            idx |= ((x >> bit) & 1) << (3 * bit);
            idx |= ((y >> bit) & 1) << (3 * bit + 1);
            idx |= ((z >> bit) & 1) << (3 * bit + 2);
        }
        idx
    }

    /// Inverse of [`Self::leaf_index`].
    pub fn leaf_coords(&self, idx: usize) -> (usize, usize, usize) {
        let (mut x, mut y, mut z) = (0usize, 0usize, 0usize);
        for bit in 0..self.levels {
            x |= ((idx >> (3 * bit)) & 1) << bit;
            y |= ((idx >> (3 * bit + 1)) & 1) << bit;
            z |= ((idx >> (3 * bit + 2)) & 1) << bit;
        }
        (x, y, z)
    }

    /// Hierarchical reduction: folds leaf values up the tree with `combine`,
    /// returning the root value. `leaves` must be in Morton order (so the
    /// eight children of each node are adjacent).
    pub fn reduce<T: Clone>(&self, leaves: &[T], combine: impl Fn(&T, &T) -> T) -> T {
        assert_eq!(leaves.len(), self.nodes_at_level(0), "leaf count mismatch");
        let mut level: Vec<T> = leaves.to_vec();
        while level.len() > 1 {
            level = level
                .chunks(8)
                .map(|c| {
                    let mut acc = c[0].clone();
                    for v in &c[1..] {
                        acc = combine(&acc, v);
                    }
                    acc
                })
                .collect();
        }
        level
            .into_iter()
            .next()
            .expect("octree has at least one node")
    }

    /// Number of point-to-point messages a full up-sweep (reduction) sends:
    /// every non-root node sends once to its parent.
    pub fn upsweep_messages(&self) -> usize {
        self.total_nodes() - 1
    }

    /// Tree depth a message travels from leaf to root — the latency chain
    /// length for the machine model.
    pub fn depth(&self) -> usize {
        self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts() {
        let t = Octree::new(4);
        assert_eq!(t.levels(), 2);
        assert_eq!(t.nodes_at_level(0), 64);
        assert_eq!(t.nodes_at_level(1), 8);
        assert_eq!(t.nodes_at_level(2), 1);
        assert_eq!(t.total_nodes(), 73);
        assert_eq!(t.upsweep_messages(), 72);
    }

    #[test]
    fn morton_round_trip() {
        let t = Octree::new(8);
        for x in 0..8 {
            for y in 0..8 {
                for z in 0..8 {
                    let idx = t.leaf_index(x, y, z);
                    assert!(idx < 512);
                    assert_eq!(t.leaf_coords(idx), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn morton_children_are_contiguous() {
        let t = Octree::new(4);
        // The 8 cells of the 2×2×2 block at origin occupy indices 0..8.
        let mut idxs: Vec<usize> = (0..2)
            .flat_map(|x| (0..2).flat_map(move |y| (0..2).map(move |z| (x, y, z))))
            .map(|(x, y, z)| t.leaf_index(x, y, z))
            .collect();
        idxs.sort_unstable();
        assert_eq!(idxs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_sums_all_leaves() {
        let t = Octree::new(4);
        let leaves: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let total = t.reduce(&leaves, |a, b| a + b);
        assert_eq!(total, (0..64).sum::<i32>() as f64);
    }

    #[test]
    fn reduce_max_matches_iterator() {
        let t = Octree::new(2);
        let leaves: Vec<i64> = vec![3, -1, 7, 2, 9, 0, -5, 4];
        assert_eq!(t.reduce(&leaves, |a, b| *a.max(b)), 9);
    }

    #[test]
    fn trivial_tree() {
        let t = Octree::new(1);
        assert_eq!(t.levels(), 0);
        assert_eq!(t.total_nodes(), 1);
        assert_eq!(t.reduce(&[42.0], |a, b| a + b), 42.0);
    }

    #[test]
    #[should_panic]
    fn non_pow2_rejected() {
        Octree::new(3);
    }
}
