//! Partition-of-unity support profiles.
//!
//! Each DC domain carries a compactly supported weight `wα(r)` that is 1 on
//! the core Ω₀α and falls smoothly to 0 at the outer edge of the buffer Γα.
//! The domain support functions of the paper are the normalised weights
//! `pα(r) = wα(r)/Σβ wβ(r)`, which satisfy the sum rule `Σα pα(r) = 1`
//! exactly wherever the cores cover space (everywhere, since the cores tile
//! the cell).

/// Cubic smoothstep: 0 at `t ≤ 0`, 1 at `t ≥ 1`, C¹ in between.
#[inline]
pub fn smoothstep(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// One-dimensional support profile in domain-local coordinates.
///
/// `x` runs over the domain extent `[−b, l+b]` where `[0, l]` is the core:
/// the profile is 1 on the core and decays to 0 at `x = −b` and `x = l+b`
/// through a smoothstep ramp across the buffer.
///
/// With `b = 0` the profile becomes the indicator of the core (hard DC
/// partition).
#[inline]
pub fn profile_1d(x: f64, core_len: f64, buffer: f64) -> f64 {
    if buffer == 0.0 {
        return if (0.0..core_len).contains(&x) {
            1.0
        } else {
            0.0
        };
    }
    if x < 0.0 {
        smoothstep((x + buffer) / buffer)
    } else if x <= core_len {
        1.0
    } else {
        smoothstep((core_len + buffer - x) / buffer)
    }
}

/// Three-dimensional separable weight: the product of three 1-D profiles
/// with per-axis buffer thickness.
#[inline]
pub fn weight_3d(local: [f64; 3], core_len: [f64; 3], buffer: [f64; 3]) -> f64 {
    profile_1d(local[0], core_len[0], buffer[0])
        * profile_1d(local[1], core_len[1], buffer[1])
        * profile_1d(local[2], core_len[2], buffer[2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothstep_endpoints_and_midpoint() {
        assert_eq!(smoothstep(-1.0), 0.0);
        assert_eq!(smoothstep(0.0), 0.0);
        assert_eq!(smoothstep(1.0), 1.0);
        assert_eq!(smoothstep(2.0), 1.0);
        assert!((smoothstep(0.5) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn profile_is_one_on_core() {
        for x in [0.0, 0.5, 1.0, 2.0, 3.0] {
            assert_eq!(profile_1d(x, 3.0, 1.0), 1.0);
        }
    }

    #[test]
    fn profile_vanishes_at_domain_edge() {
        assert_eq!(profile_1d(-1.0, 3.0, 1.0), 0.0);
        assert_eq!(profile_1d(4.0, 3.0, 1.0), 0.0);
        assert_eq!(profile_1d(-5.0, 3.0, 1.0), 0.0);
    }

    #[test]
    fn profile_monotone_on_ramps() {
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = -1.0 + i as f64 * 0.05; // −1 → 0
            let p = profile_1d(x, 3.0, 1.0);
            assert!(p >= prev - 1e-15);
            prev = p;
        }
    }

    #[test]
    fn adjacent_ramps_cover_overlap() {
        // Domain A core [0,l], domain B core [l,2l]: across the shared
        // boundary at least one raw weight is positive (the partition of
        // unity normalises them), and the ramps are mirror images.
        let (l, b) = (3.0, 1.0);
        for i in 0..=20 {
            let x = l - b + i as f64 * (2.0 * b / 20.0); // overlap region
            let pa = profile_1d(x, l, b);
            let pb = profile_1d(x - l, l, b);
            assert!(pa + pb > 0.0, "coverage gap at x = {x}");
            // Mirror symmetry: A's falling ramp at l+d equals B's rising
            // ramp at d ... i.e. pb(x−l) = pa(2l−x) by construction.
            assert!((pb - profile_1d(2.0 * l - x, l, b)).abs() < 1e-12);
        }
    }

    #[test]
    fn ramp_mirror_symmetry() {
        let (l, b) = (3.0, 1.0);
        for i in 0..=10 {
            let d = i as f64 * b / 10.0;
            assert!((profile_1d(-d, l, b) - profile_1d(l + d, l, b)).abs() < 1e-15);
        }
    }

    #[test]
    fn hard_partition_with_zero_buffer() {
        assert_eq!(profile_1d(-0.01, 2.0, 0.0), 0.0);
        assert_eq!(profile_1d(0.0, 2.0, 0.0), 1.0);
        assert_eq!(profile_1d(1.99, 2.0, 0.0), 1.0);
        assert_eq!(profile_1d(2.0, 2.0, 0.0), 0.0);
    }

    #[test]
    fn weight_3d_is_separable_product() {
        let w = weight_3d([0.5, -0.5, 3.5], [3.0, 3.0, 3.0], [1.0, 1.0, 1.0]);
        let expect = 1.0 * profile_1d(-0.5, 3.0, 1.0) * profile_1d(3.5, 3.0, 1.0);
        assert!((w - expect).abs() < 1e-15);
        // Per-axis buffers act independently: zero buffer on z makes the z
        // factor a hard indicator.
        let w2 = weight_3d([0.5, -0.5, 3.5], [3.0, 3.0, 3.0], [1.0, 1.0, 0.0]);
        assert_eq!(w2, 0.0);
    }
}
