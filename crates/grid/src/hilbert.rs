//! Space-filling curves: Morton (Z-order) and Hilbert.
//!
//! The paper compresses trajectory I/O with a "spacefilling-curve-based
//! adaptive data compression scheme" (§4.4, ref [65]): sorting atoms along a
//! space-filling curve makes consecutive coordinates spatially close, so
//! delta encoding of quantised positions needs few bits. The Hilbert curve
//! (implemented here with Skilling's transpose algorithm) guarantees that
//! consecutive curve indices are face-adjacent cells; Morton order is kept as
//! the cheaper, slightly less local alternative and as the octree child
//! ordering.

/// Morton (Z-order) encoding of a 3-D cell coordinate with `bits` bits per
/// axis.
pub fn morton_encode(x: u32, y: u32, z: u32, bits: u32) -> u64 {
    debug_assert!(bits <= 21);
    let mut out = 0u64;
    for b in 0..bits {
        out |= (((x >> b) & 1) as u64) << (3 * b);
        out |= (((y >> b) & 1) as u64) << (3 * b + 1);
        out |= (((z >> b) & 1) as u64) << (3 * b + 2);
    }
    out
}

/// Inverse of [`morton_encode`].
pub fn morton_decode(m: u64, bits: u32) -> (u32, u32, u32) {
    let (mut x, mut y, mut z) = (0u32, 0u32, 0u32);
    for b in 0..bits {
        x |= (((m >> (3 * b)) & 1) as u32) << b;
        y |= (((m >> (3 * b + 1)) & 1) as u32) << b;
        z |= (((m >> (3 * b + 2)) & 1) as u32) << b;
    }
    (x, y, z)
}

/// Hilbert-curve index of a 3-D cell coordinate with `bits` bits per axis
/// (Skilling's transpose algorithm, n = 3 dimensions).
pub fn hilbert_encode(x: u32, y: u32, z: u32, bits: u32) -> u64 {
    debug_assert!((1..=21).contains(&bits));
    let mut xs = [x, y, z];
    axes_to_transpose(&mut xs, bits);
    // Interleave the transposed form: bit j of xs[i] lands at Hilbert bit
    // j*3 + (2 − i), making xs[0] the most significant within each triple.
    let mut h = 0u64;
    for j in 0..bits {
        for (i, &xi) in xs.iter().enumerate() {
            h |= (((xi >> j) & 1) as u64) << (3 * j + (2 - i as u32));
        }
    }
    h
}

/// Inverse of [`hilbert_encode`].
pub fn hilbert_decode(h: u64, bits: u32) -> (u32, u32, u32) {
    let mut xs = [0u32; 3];
    for j in 0..bits {
        for (i, xi) in xs.iter_mut().enumerate() {
            *xi |= (((h >> (3 * j + (2 - i as u32))) & 1) as u32) << j;
        }
    }
    transpose_to_axes(&mut xs, bits);
    (xs[0], xs[1], xs[2])
}

fn axes_to_transpose(x: &mut [u32; 3], bits: u32) {
    let n = 3;
    let m = 1u32 << (bits - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0;
    let mut q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

fn transpose_to_axes(x: &mut [u32; 3], bits: u32) {
    let n = 3;
    let mut t = x[n - 1] >> 1;
    // Gray decode.
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u32;
    while q != (1u32 << bits) {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_round_trip() {
        for x in 0..8u32 {
            for y in 0..8 {
                for z in 0..8 {
                    let m = morton_encode(x, y, z, 3);
                    assert_eq!(morton_decode(m, 3), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn hilbert_round_trip() {
        for bits in 1..=4u32 {
            let n = 1u32 << bits;
            for x in 0..n {
                for y in 0..n {
                    for z in 0..n {
                        let h = hilbert_encode(x, y, z, bits);
                        assert_eq!(hilbert_decode(h, bits), (x, y, z), "bits {bits}");
                    }
                }
            }
        }
    }

    #[test]
    fn hilbert_is_a_bijection() {
        let bits = 3u32;
        let n = 1u64 << (3 * bits);
        let mut seen = vec![false; n as usize];
        for x in 0..8u32 {
            for y in 0..8 {
                for z in 0..8 {
                    let h = hilbert_encode(x, y, z, bits) as usize;
                    assert!(!seen[h], "index {h} visited twice");
                    seen[h] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hilbert_consecutive_cells_are_adjacent() {
        // The defining property: walking the curve moves exactly one step in
        // exactly one axis at a time.
        let bits = 3u32;
        let n = 1u64 << (3 * bits);
        let mut prev = hilbert_decode(0, bits);
        for h in 1..n {
            let cur = hilbert_decode(h, bits);
            let d = (prev.0 as i64 - cur.0 as i64).abs()
                + (prev.1 as i64 - cur.1 as i64).abs()
                + (prev.2 as i64 - cur.2 as i64).abs();
            assert_eq!(d, 1, "step {h}: {prev:?} → {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn morton_is_not_always_adjacent_but_hilbert_is() {
        // Sanity check on why Hilbert is preferred: count non-unit steps.
        let bits = 3u32;
        let n = 1u64 << (3 * bits);
        let mut morton_jumps = 0;
        let mut prev = morton_decode(0, bits);
        for m in 1..n {
            let cur = morton_decode(m, bits);
            let d = (prev.0 as i64 - cur.0 as i64).abs()
                + (prev.1 as i64 - cur.1 as i64).abs()
                + (prev.2 as i64 - cur.2 as i64).abs();
            if d != 1 {
                morton_jumps += 1;
            }
            prev = cur;
        }
        assert!(morton_jumps > 0, "Morton has jumps");
    }
}
