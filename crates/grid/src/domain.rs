//! Divide-and-conquer domain decomposition (paper Fig 1).
//!
//! The periodic global cell is tiled by `ndx × ndy × ndz` non-overlapping
//! cubic cores Ω₀α of side `l = L/nd`; each core is padded by a buffer of
//! thickness `b` into an overlapping domain Ωα of side `l + 2b`. Physical
//! fields live on each domain's own local grid (with periodic boundary
//! conditions on the *domain*, per the LDC treatment of §3.1), and the
//! partition-of-unity support functions `pα` stitch domain fields back into
//! global ones.

use crate::support::weight_3d;
use crate::ugrid::UniformGrid3;
use mqmd_util::Vec3;

/// One DC domain: core box plus buffer shell.
#[derive(Clone, Debug)]
pub struct Domain {
    /// Index of this domain within its decomposition.
    pub id: usize,
    /// Integer coordinates of the core within the domain lattice.
    pub lattice: (usize, usize, usize),
    /// Corner of the core box in global coordinates (Bohr).
    pub core_origin: Vec3,
    /// Core side lengths `l` (Bohr).
    pub core_len: Vec3,
    /// Buffer thickness per axis (Bohr). Axes spanned by a single domain
    /// get zero buffer (the domain already covers the cell periodically);
    /// otherwise the requested buffer, clamped so the domain fits the cell.
    pub buffer: Vec3,
    /// Global cell side lengths (Bohr), for periodic wrapping.
    pub cell: Vec3,
}

impl Domain {
    /// Domain side lengths `l + 2b`.
    pub fn domain_len(&self) -> Vec3 {
        self.core_len + self.buffer * 2.0
    }

    /// Corner of the domain box (core origin minus buffer) in global
    /// coordinates, possibly negative before wrapping.
    pub fn domain_origin(&self) -> Vec3 {
        self.core_origin - self.buffer
    }

    /// Volume of the domain box.
    pub fn volume(&self) -> f64 {
        let d = self.domain_len();
        d.x * d.y * d.z
    }

    /// Maps a global position to domain-local coordinates in
    /// `[0, l+2b)³` if the (periodically wrapped) point lies inside the
    /// domain box, else `None`.
    pub fn to_local(&self, r: Vec3) -> Option<Vec3> {
        let d = self.domain_len();
        // Work relative to the domain corner, minimum-image style per axis.
        let rel = (r - self.domain_origin()).wrap(self.cell);
        let inside = |x: f64, len: f64| x < len;
        if inside(rel.x, d.x) && inside(rel.y, d.y) && inside(rel.z, d.z) {
            Some(rel)
        } else {
            None
        }
    }

    /// Maps domain-local coordinates back to a wrapped global position.
    pub fn to_global(&self, local: Vec3) -> Vec3 {
        (self.domain_origin() + local).wrap(self.cell)
    }

    /// Returns whether the wrapped point lies in the (half-open) core box.
    pub fn core_contains(&self, r: Vec3) -> bool {
        match self.to_local(r) {
            None => false,
            Some(loc) => {
                let b = self.buffer;
                loc.x >= b.x
                    && loc.x < b.x + self.core_len.x
                    && loc.y >= b.y
                    && loc.y < b.y + self.core_len.y
                    && loc.z >= b.z
                    && loc.z < b.z + self.core_len.z
            }
        }
    }

    /// Un-normalised support weight `wα(r)` (1 on the core, smooth decay to 0
    /// across the buffer).
    pub fn weight(&self, r: Vec3) -> f64 {
        match self.to_local(r) {
            None => 0.0,
            Some(loc) => {
                // support::profile_1d uses core-relative coordinates.
                let x = [
                    loc.x - self.buffer.x,
                    loc.y - self.buffer.y,
                    loc.z - self.buffer.z,
                ];
                weight_3d(x, self.core_len.to_array(), self.buffer.to_array())
            }
        }
    }

    /// Builds this domain's local grid with approximately the requested grid
    /// spacing, rounding the point count up to the next power of two per axis
    /// (so the local FFT solver always hits the fast radix-2 path).
    pub fn local_grid(&self, target_spacing: f64) -> UniformGrid3 {
        let d = self.domain_len();
        let pick = |len: f64| {
            ((len / target_spacing).ceil() as usize)
                .next_power_of_two()
                .max(4)
        };
        UniformGrid3::new((pick(d.x), pick(d.y), pick(d.z)), (d.x, d.y, d.z))
    }
}

/// A full decomposition of the global cell into DC domains.
#[derive(Clone, Debug)]
pub struct DomainDecomposition {
    domains: Vec<Domain>,
    nd: (usize, usize, usize),
    cell: Vec3,
    buffer: f64,
}

impl DomainDecomposition {
    /// Decomposes a periodic cell of side lengths `cell` into
    /// `ndx × ndy × ndz` domains with requested buffer thickness `buffer`.
    ///
    /// The effective buffer is clamped per axis to `(cell − core)/2` so a
    /// domain never overlaps its own periodic image; in particular an axis
    /// spanned by a single domain gets zero buffer (the domain already
    /// covers that axis periodically).
    pub fn new(cell: Vec3, nd: (usize, usize, usize), buffer: f64) -> Self {
        let (ndx, ndy, ndz) = nd;
        assert!(
            ndx > 0 && ndy > 0 && ndz > 0,
            "need at least one domain per axis"
        );
        assert!(buffer >= 0.0, "buffer must be non-negative");
        let core = Vec3::new(
            cell.x / ndx as f64,
            cell.y / ndy as f64,
            cell.z / ndz as f64,
        );
        let buffer_vec = Vec3::new(
            buffer.min(0.5 * (cell.x - core.x)),
            buffer.min(0.5 * (cell.y - core.y)),
            buffer.min(0.5 * (cell.z - core.z)),
        );
        let mut domains = Vec::with_capacity(ndx * ndy * ndz);
        for ix in 0..ndx {
            for iy in 0..ndy {
                for iz in 0..ndz {
                    let id = (ix * ndy + iy) * ndz + iz;
                    domains.push(Domain {
                        id,
                        lattice: (ix, iy, iz),
                        core_origin: Vec3::new(
                            ix as f64 * core.x,
                            iy as f64 * core.y,
                            iz as f64 * core.z,
                        ),
                        core_len: core,
                        buffer: buffer_vec,
                        cell,
                    });
                }
            }
        }
        Self {
            domains,
            nd,
            cell,
            buffer,
        }
    }

    /// The domains, ordered by flat lattice index.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True if the decomposition has no domains (never: constructor forbids).
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Domain lattice dimensions.
    pub fn nd(&self) -> (usize, usize, usize) {
        self.nd
    }

    /// Requested (nominal) buffer thickness; per-axis effective values live
    /// on each [`Domain`].
    pub fn buffer(&self) -> f64 {
        self.buffer
    }

    /// Global cell lengths.
    pub fn cell(&self) -> Vec3 {
        self.cell
    }

    /// The domain whose *core* contains the wrapped point (unique since the
    /// cores tile the cell).
    pub fn core_owner(&self, r: Vec3) -> &Domain {
        let w = r.wrap(self.cell);
        let (ndx, ndy, ndz) = self.nd;
        let ix = ((w.x / self.cell.x * ndx as f64) as usize).min(ndx - 1);
        let iy = ((w.y / self.cell.y * ndy as f64) as usize).min(ndy - 1);
        let iz = ((w.z / self.cell.z * ndz as f64) as usize).min(ndz - 1);
        &self.domains[(ix * ndy + iy) * ndz + iz]
    }

    /// All domains whose box (core + buffer) contains the point.
    pub fn domains_containing(&self, r: Vec3) -> Vec<&Domain> {
        // Only the core owner and its lattice neighbours can contain r.
        let owner = self.core_owner(r).lattice;
        let (ndx, ndy, ndz) = self.nd;
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    let ix = (owner.0 as i64 + dx).rem_euclid(ndx as i64) as usize;
                    let iy = (owner.1 as i64 + dy).rem_euclid(ndy as i64) as usize;
                    let iz = (owner.2 as i64 + dz).rem_euclid(ndz as i64) as usize;
                    let id = (ix * ndy + iy) * ndz + iz;
                    if seen.insert(id) && self.domains[id].to_local(r).is_some() {
                        out.push(&self.domains[id]);
                    }
                }
            }
        }
        out
    }

    /// Normalised partition-of-unity values `pα(r)` for every domain whose
    /// support contains `r`. The returned `(domain id, pα)` pairs sum to 1.
    pub fn support_at(&self, r: Vec3) -> Vec<(usize, f64)> {
        let cands = self.domains_containing(r);
        let mut weights: Vec<(usize, f64)> = cands
            .iter()
            .map(|d| (d.id, d.weight(r)))
            .filter(|&(_, w)| w > 0.0)
            .collect();
        let total: f64 = weights.iter().map(|&(_, w)| w).sum();
        debug_assert!(
            total > 0.0,
            "cores tile space, so some weight must be positive"
        );
        for (_, w) in &mut weights {
            *w /= total;
        }
        weights
    }

    /// Nearest-neighbour domain ids (face neighbours on the periodic domain
    /// lattice) — the point-to-point communication pattern of §5.1.
    pub fn face_neighbors(&self, id: usize) -> Vec<usize> {
        let d = &self.domains[id];
        let (ndx, ndy, ndz) = self.nd;
        let (ix, iy, iz) = d.lattice;
        let mut out = Vec::new();
        for (dx, dy, dz) in [
            (-1i64, 0i64, 0i64),
            (1, 0, 0),
            (0, -1, 0),
            (0, 1, 0),
            (0, 0, -1),
            (0, 0, 1),
        ] {
            let jx = (ix as i64 + dx).rem_euclid(ndx as i64) as usize;
            let jy = (iy as i64 + dy).rem_euclid(ndy as i64) as usize;
            let jz = (iz as i64 + dz).rem_euclid(ndz as i64) as usize;
            let j = (jx * ndy + jy) * ndz + jz;
            if j != id && !out.contains(&j) {
                out.push(j);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decomp() -> DomainDecomposition {
        DomainDecomposition::new(Vec3::splat(12.0), (3, 3, 3), 1.0)
    }

    #[test]
    fn cores_tile_cell() {
        let dd = decomp();
        assert_eq!(dd.len(), 27);
        // Every sample point is in exactly one core.
        let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(0);
        for _ in 0..500 {
            let r = Vec3::new(
                rng.uniform_in(0.0, 12.0),
                rng.uniform_in(0.0, 12.0),
                rng.uniform_in(0.0, 12.0),
            );
            let owners = dd.domains().iter().filter(|d| d.core_contains(r)).count();
            assert_eq!(owners, 1, "point {r:?} owned by {owners} cores");
            assert!(dd.core_owner(r).core_contains(r));
        }
    }

    #[test]
    fn partition_of_unity_sums_to_one() {
        let dd = decomp();
        let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(1);
        for _ in 0..500 {
            let r = Vec3::new(
                rng.uniform_in(-5.0, 20.0),
                rng.uniform_in(-5.0, 20.0),
                rng.uniform_in(-5.0, 20.0),
            );
            let p = dd.support_at(r);
            let sum: f64 = p.iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-12, "sum rule broken at {r:?}: {sum}");
            for &(_, w) in &p {
                assert!((0.0..=1.0 + 1e-12).contains(&w));
            }
        }
    }

    #[test]
    fn deep_core_point_has_unit_support() {
        let dd = decomp();
        // Centre of domain (0,0,0)'s core, far (> b) from all boundaries.
        let r = Vec3::splat(2.0);
        let p = dd.support_at(r);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].0, dd.core_owner(r).id);
        assert!((p[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn local_global_round_trip() {
        let dd = decomp();
        let d = &dd.domains()[13];
        let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(2);
        for _ in 0..200 {
            let dl = d.domain_len();
            let local = Vec3::new(
                rng.uniform_in(0.0, dl.x - 1e-9),
                rng.uniform_in(0.0, dl.y - 1e-9),
                rng.uniform_in(0.0, dl.z - 1e-9),
            );
            let g = d.to_global(local);
            let back = d
                .to_local(g)
                .expect("global point must map back into the domain");
            assert!((back - local).norm() < 1e-9);
        }
    }

    #[test]
    fn buffer_point_shared_between_domains() {
        let dd = decomp();
        // A point just across the x-boundary of domain (0,·,·)'s core at
        // x = 4 lies in the buffer overlap of two domains.
        let r = Vec3::new(4.2, 2.0, 2.0);
        let p = dd.support_at(r);
        assert!(p.len() >= 2, "expected overlap, got {p:?}");
    }

    #[test]
    fn periodic_wrap_across_cell_edge() {
        let dd = decomp();
        // A point just outside the cell maps into domain (0,0,0)'s core.
        let r = Vec3::new(12.5, 0.5, 0.5);
        assert!(dd.core_owner(r).lattice == (0, 0, 0));
        // And a point at −0.5 (wrapped: 11.5) belongs to the last domain.
        let r2 = Vec3::new(-0.5, 0.5, 0.5);
        assert_eq!(dd.core_owner(r2).lattice.0, 2);
    }

    #[test]
    fn face_neighbors_on_periodic_lattice() {
        let dd = decomp();
        let n = dd.face_neighbors(0);
        assert_eq!(n.len(), 6);
        // 2-domain axes: the ±x neighbours coincide, so only 3 distinct
        // face neighbours remain.
        let dd2 = DomainDecomposition::new(Vec3::splat(8.0), (2, 2, 2), 1.0);
        let n2 = dd2.face_neighbors(0);
        assert_eq!(n2.len(), 3);
        assert!(n2.contains(&4) && n2.contains(&2) && n2.contains(&1));
    }

    #[test]
    fn local_grid_is_pow2_and_covers_domain() {
        let dd = decomp();
        let g = dd.domains()[0].local_grid(0.5);
        let (nx, ny, nz) = g.dims();
        assert!(nx.is_power_of_two() && ny.is_power_of_two() && nz.is_power_of_two());
        let (lx, _, _) = g.lengths();
        assert!((lx - 6.0).abs() < 1e-12, "domain length l+2b = 4+2 = 6");
        let (hx, _, _) = g.spacing();
        assert!(hx <= 0.5 + 1e-12);
    }

    #[test]
    fn oversized_buffer_clamped() {
        // core 4 + 2×3 = 10 > cell 8 per axis with nd = 2: the buffer is
        // clamped to (8 − 4)/2 = 2 so domains exactly span the cell.
        let dd = DomainDecomposition::new(Vec3::splat(8.0), (2, 2, 2), 3.0);
        let d = &dd.domains()[0];
        assert!((d.buffer - Vec3::splat(2.0)).norm() < 1e-12);
        assert!((d.domain_len() - Vec3::splat(8.0)).norm() < 1e-12);
    }

    #[test]
    fn single_domain_axis_gets_zero_buffer() {
        let dd = DomainDecomposition::new(Vec3::splat(8.0), (2, 1, 1), 1.0);
        let d = &dd.domains()[0];
        assert_eq!(d.buffer.x, 1.0);
        assert_eq!(d.buffer.y, 0.0);
        assert_eq!(d.buffer.z, 0.0);
        // The y/z extent is the whole cell; the partition of unity still
        // sums to one everywhere.
        let r = Vec3::new(3.9, 7.9, 0.1);
        let sum: f64 = dd.support_at(r).iter().map(|&(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
