//! The service runtime: a bounded queue, a supervised worker pool, and a
//! shared solver pool, composed from the cancellation, fault, checkpoint,
//! and event planes.
//!
//! Concurrency structure: one mutex ([`Inner`]) guards the queue, the
//! running set, the tenant accounting, and the [`Ledger`] together, so a
//! job's state transition and its accounting are atomic — there is no
//! window in which a job is in neither the queue, nor the running set,
//! nor a terminal ledger state. A single condvar wakes both idle workers
//! (new or requeued work) and drain waiters (terminal transitions).

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mqmd_core::global::LdcSolver;
use mqmd_core::qmd::QmdDriver;
use mqmd_md::io::CheckpointStore;
use mqmd_md::thermostat::NoseHoover;
use mqmd_util::cancel::{CancelReason, CancelScope, CancelToken};
use mqmd_util::events::{self, Event, LaneGuard};
use mqmd_util::{faults, MqmdError, Xoshiro256pp};

use crate::ledger::{Admission, JobRecord, JobResult, JobState, Ledger, RejectReason};
use crate::spec::{escalate, JobSpec};

/// Service-plane configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads. `0` is allowed (admission-only runtime, nothing
    /// executes) and is used by admission tests.
    pub workers: usize,
    /// Global queue capacity checked at admission. Requeues (preemption,
    /// retry) bypass this bound — shed work is never dropped — so the
    /// capacity limits *admitted backlog*, not transient occupancy.
    pub queue_capacity: usize,
    /// Per-tenant in-flight cap (queued + running).
    pub tenant_quota: usize,
    /// Attempt ladder length: a job is started at most this many times
    /// (panics and retryable failures consume attempts; preemptions do
    /// not — a preempted job was not at fault).
    pub max_attempts: u32,
    /// Base backoff delay (milliseconds) for retry attempt 1; later
    /// attempts grow exponentially with seeded jitter, capped at 250 ms.
    pub backoff_base_ms: u64,
    /// Whether higher-priority arrivals preempt running lower-priority
    /// jobs (checkpoint + requeue).
    pub preemption: bool,
    /// Seed for the runtime's own stochastic choices (backoff jitter).
    pub seed: u64,
    /// Root directory for per-job checkpoint stores.
    pub checkpoint_dir: PathBuf,
    /// Retention budget per job store (valid checkpoints kept).
    pub checkpoint_keep: usize,
}

impl ServiceConfig {
    /// A small single-worker runtime writing checkpoints under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            workers: 1,
            queue_capacity: 16,
            tenant_quota: 4,
            max_attempts: 3,
            backoff_base_ms: 2,
            preemption: true,
            seed: 0,
            checkpoint_dir: dir.into(),
            checkpoint_keep: 2,
        }
    }
}

/// A job sitting in the queue (freshly admitted or requeued).
struct QueuedJob {
    id: u64,
    spec: JobSpec,
    /// Attempts already started.
    attempt: u32,
    /// Not eligible to run before this instant (retry backoff).
    ready_at: Instant,
    /// Whether a resume checkpoint exists in this job's store.
    has_checkpoint: bool,
    /// Per-step energies up to (and consistent with) the latest
    /// checkpoint; the stitched series ends up in [`JobResult`].
    energies: Vec<f64>,
    /// Wall clock consumed by finished attempts (deadline accounting).
    consumed: Duration,
}

/// A job currently held by a worker.
struct RunningJob {
    id: u64,
    priority: u8,
    token: CancelToken,
}

/// Mutable scheduler state (single lock; see module docs).
struct Inner {
    queue: Vec<QueuedJob>,
    running: HashMap<usize, RunningJob>,
    /// Queued + running jobs per tenant (quota accounting).
    tenant_active: BTreeMap<u32, u64>,
    next_id: u64,
    shutdown: bool,
    ledger: Ledger,
}

struct Shared {
    cfg: ServiceConfig,
    state: Mutex<Inner>,
    cv: Condvar,
    /// Solvers pooled by plan key; checked out per attempt with job state
    /// reset, so plan caches (eig workspaces, MG hierarchy, FFT arena)
    /// are shared across jobs of the same shape.
    pool: Mutex<HashMap<String, Vec<LdcSolver>>>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A worker panic is caught before it can unwind through this
        // lock, but recover from poisoning anyway: the Inner invariants
        // are re-established before every unlock.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn checkout_solver(&self, key: &str, cfg: mqmd_core::global::LdcConfig) -> LdcSolver {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        match pool.get_mut(key).and_then(Vec::pop) {
            Some(mut s) => {
                // Pooled scratch is bitwise-inert (pinned by the PR 3/5
                // identity tests); only job state must be wiped.
                s.reset_job_state();
                s.config = cfg;
                s
            }
            None => LdcSolver::new(cfg),
        }
    }

    fn return_solver(&self, key: String, solver: LdcSolver) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        let slot = pool.entry(key).or_default();
        // Bound pooled instances per shape; beyond that, drop.
        if slot.len() < self.cfg.workers.max(1) * 2 {
            slot.push(solver);
        }
    }
}

/// How an execution attempt ended (worker-internal).
enum ExecOutcome {
    Completed(JobResult),
    /// Checkpoint written; `energies` covers exactly the checkpointed
    /// steps.
    Preempted {
        energies: Vec<f64>,
    },
    Failed {
        error: MqmdError,
        /// Energies consistent with the newest durable checkpoint (the
        /// failed attempt's progress past it is discarded).
        synced: Vec<f64>,
        wrote_checkpoint: bool,
    },
}

/// The multi-tenant job runtime. Create with [`ServiceRuntime::start`],
/// feed with [`submit`](Self::submit), and finish with
/// [`shutdown`](Self::shutdown) (drains, then joins the workers).
pub struct ServiceRuntime {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ServiceRuntime {
    /// Starts the worker pool. Creates the checkpoint root directory.
    pub fn start(cfg: ServiceConfig) -> mqmd_util::Result<Self> {
        std::fs::create_dir_all(&cfg.checkpoint_dir)?;
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(Inner {
                queue: Vec::new(),
                running: HashMap::new(),
                tenant_active: BTreeMap::new(),
                next_id: 1,
                shutdown: false,
                ledger: Ledger::default(),
            }),
            cv: Condvar::new(),
            pool: Mutex::new(HashMap::new()),
        });
        let handles = (0..shared.cfg.workers)
            .map(|wid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mqmd-serve-{wid}"))
                    .spawn(move || worker_loop(shared, wid))
                    .expect("spawn service worker")
            })
            .collect();
        Ok(Self { shared, handles })
    }

    /// Admission control: validate, then check (in this order) deadline,
    /// tenant quota, queue capacity. Rejections are typed and counted;
    /// nothing is ever silently dropped.
    pub fn submit(&self, spec: JobSpec) -> Admission {
        if let Err(e) = spec.validate() {
            let mut inner = self.shared.lock();
            inner.ledger.reject(RejectReason::InvalidSpec);
            drop(inner);
            emit_job_state(0, spec.tenant, "rejected", format!("invalid_spec: {e}"));
            return Admission::Rejected(RejectReason::InvalidSpec);
        }
        let mut inner = self.shared.lock();
        let reason = if spec.deadline == Some(Duration::ZERO) {
            Some(RejectReason::OverDeadline)
        } else if inner.tenant_active.get(&spec.tenant).copied().unwrap_or(0)
            >= self.shared.cfg.tenant_quota as u64
        {
            Some(RejectReason::QuotaExceeded)
        } else if inner.queue.len() >= self.shared.cfg.queue_capacity {
            Some(RejectReason::QueueFull)
        } else {
            None
        };
        if let Some(reason) = reason {
            inner.ledger.reject(reason);
            drop(inner);
            emit_job_state(0, spec.tenant, "rejected", reason.label().to_string());
            return Admission::Rejected(reason);
        }

        let id = inner.next_id;
        inner.next_id += 1;
        let tenant = spec.tenant;
        let priority = spec.priority;
        inner.ledger.submitted += 1;
        inner.ledger.records.insert(
            id,
            JobRecord {
                id,
                tenant,
                priority,
                attempts: 0,
                preemptions: 0,
                resumes: 0,
                state: JobState::Queued,
            },
        );
        let active = inner.tenant_active.entry(tenant).or_insert(0);
        *active += 1;
        let active = *active;
        let peak = inner.ledger.tenant_peak.entry(tenant).or_insert(0);
        *peak = (*peak).max(active);
        inner.queue.push(QueuedJob {
            id,
            spec: spec.clone(),
            attempt: 0,
            ready_at: Instant::now(),
            has_checkpoint: false,
            energies: Vec::new(),
            consumed: Duration::ZERO,
        });
        inner.ledger.queue_depth_peak = inner.ledger.queue_depth_peak.max(inner.queue.len() as u64);

        // Preemption: if every worker is busy and one of them runs a
        // strictly lower-priority job, signal the lowest-priority (ties:
        // youngest) to checkpoint and yield at its next step boundary.
        if self.shared.cfg.preemption
            && self.shared.cfg.workers > 0
            && inner.running.len() >= self.shared.cfg.workers
        {
            if let Some(victim) = inner
                .running
                .values()
                .filter(|r| r.priority < priority && r.token.status().is_none())
                .min_by_key(|r| (r.priority, std::cmp::Reverse(r.id)))
            {
                victim.token.cancel(CancelReason::Preempt);
            }
        }
        let depth = inner.queue.len() as u32;
        let running = inner.running.len() as u32;
        drop(inner);
        emit_job_state(id, tenant, "queued", String::new());
        events::emit(Event::QueueDepth { depth, running });
        self.shared.cv.notify_all();
        Admission::Accepted(id)
    }

    /// Snapshot of the ledger (records and counters).
    pub fn ledger(&self) -> Ledger {
        self.shared.lock().ledger.clone()
    }

    /// Blocks until every admitted job is terminal. Returns immediately
    /// if the runtime has no workers.
    pub fn drain(&self) {
        if self.shared.cfg.workers == 0 {
            return;
        }
        let mut inner = self.shared.lock();
        while !(inner.queue.is_empty() && inner.running.is_empty()) {
            // The timeout re-checks backoff-delayed jobs whose ready_at
            // passes without any state transition.
            inner = match self
                .shared
                .cv
                .wait_timeout(inner, Duration::from_millis(20))
            {
                Ok((g, _)) => g,
                Err(e) => e.into_inner().0,
            };
        }
    }

    /// Drains, stops the workers, and returns the final ledger.
    pub fn shutdown(mut self) -> Ledger {
        self.drain();
        {
            let mut inner = self.shared.lock();
            inner.shutdown = true;
        }
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.shared.lock().ledger.clone()
    }

    /// The audit limits this runtime promises (for [`Ledger::audit`]).
    pub fn limits(&self) -> (usize, usize) {
        (self.shared.cfg.tenant_quota, self.shared.cfg.queue_capacity)
    }
}

impl Drop for ServiceRuntime {
    fn drop(&mut self) {
        // Let workers finish the backlog in the background and exit;
        // `shutdown()` is the orderly path and joins them.
        if let Ok(mut inner) = self.shared.state.lock() {
            inner.shutdown = true;
        }
        self.shared.cv.notify_all();
    }
}

fn emit_job_state(job: u64, tenant: u32, state: &'static str, detail: String) {
    events::emit(Event::JobState {
        job,
        tenant,
        state,
        detail,
    });
}

/// Seeded exponential backoff with jitter: deterministic in (service
/// seed, job id, attempt), so a replayed soak reproduces its schedule.
fn backoff_delay(cfg: &ServiceConfig, job: u64, attempt: u32) -> Duration {
    let mut rng = Xoshiro256pp::seed_from_u64(
        cfg.seed ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt).rotate_left(32),
    );
    let base = cfg.backoff_base_ms.max(1);
    let exp = base.saturating_mul(1 << attempt.saturating_sub(1).min(6));
    Duration::from_millis((exp + rng.below(exp)).min(250))
}

/// Whether a failure is worth another attempt. Typed cancellations and
/// invalid specs are final; convergence, numerical, and I/O failures are
/// the transient class the retry ladder exists for.
fn retryable(e: &MqmdError) -> bool {
    matches!(
        e,
        MqmdError::Convergence { .. } | MqmdError::Numerical(_) | MqmdError::Io(_)
    )
}

fn worker_loop(shared: Arc<Shared>, wid: usize) {
    let _lane = LaneGuard::rank(wid as u32);
    while let Some((job, token)) = next_job(&shared, wid) {
        let attempt_start = Instant::now();
        let over_budget = job.spec.deadline.is_some_and(|b| job.consumed >= b);
        let result = if over_budget {
            // The budget was exhausted by earlier attempts; fail without
            // starting a solve.
            Ok(ExecOutcome::Failed {
                error: MqmdError::Cancelled {
                    what: format!("job {}", job.id),
                    reason: CancelReason::Deadline,
                },
                synced: job.energies.clone(),
                wrote_checkpoint: false,
            })
        } else {
            run_attempt(&shared, wid, &job, &token)
        };
        finish_attempt(&shared, wid, job, result, attempt_start.elapsed());
    }
}

/// Picks the best eligible job: highest priority, then oldest id. Waits
/// (bounded by the earliest backoff expiry) when nothing is eligible.
fn next_job(shared: &Arc<Shared>, wid: usize) -> Option<(QueuedJob, CancelToken)> {
    let mut inner = shared.lock();
    loop {
        if inner.shutdown && inner.queue.is_empty() {
            return None;
        }
        let now = Instant::now();
        let best = inner
            .queue
            .iter()
            .enumerate()
            .filter(|(_, j)| j.ready_at <= now)
            .max_by_key(|(_, j)| (j.spec.priority, std::cmp::Reverse(j.id)))
            .map(|(i, _)| i);
        if let Some(i) = best {
            let mut job = inner.queue.remove(i);
            job.attempt += 1;
            let token = CancelToken::new();
            if let Some(budget) = job.spec.deadline {
                token.set_budget(budget.saturating_sub(job.consumed));
            }
            let resumed = job.has_checkpoint;
            if resumed {
                inner.ledger.resumes += 1;
            }
            if let Some(rec) = inner.ledger.records.get_mut(&job.id) {
                rec.attempts = job.attempt;
                rec.state = JobState::Running;
                if resumed {
                    rec.resumes += 1;
                }
            }
            inner.running.insert(
                wid,
                RunningJob {
                    id: job.id,
                    priority: job.spec.priority,
                    token: token.clone(),
                },
            );
            let (id, tenant) = (job.id, job.spec.tenant);
            let depth = inner.queue.len() as u32;
            let running = inner.running.len() as u32;
            drop(inner);
            emit_job_state(
                id,
                tenant,
                "running",
                format!(
                    "attempt {}{}",
                    job.attempt,
                    if resumed { " (resume)" } else { "" }
                ),
            );
            events::emit(Event::QueueDepth { depth, running });
            return Some((job, token));
        }
        let earliest = inner.queue.iter().map(|j| j.ready_at).min();
        inner = match earliest {
            Some(t) => {
                let wait = t
                    .saturating_duration_since(now)
                    .max(Duration::from_millis(1));
                match shared.cv.wait_timeout(inner, wait) {
                    Ok((g, _)) => g,
                    Err(e) => e.into_inner().0,
                }
            }
            None => match shared.cv.wait(inner) {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            },
        };
    }
}

/// Runs one supervised attempt: fault poll, solver checkout, execution.
/// Panics (genuine or injected `WorkerKill`) are caught here; a panicking
/// attempt's solver is discarded, never returned to the pool.
fn run_attempt(
    shared: &Arc<Shared>,
    wid: usize,
    job: &QueuedJob,
    token: &CancelToken,
) -> Result<ExecOutcome, String> {
    let key = job.spec.plan_key();
    let cfg = escalate(&job.spec.ldc_config(), job.attempt);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        // Per-pickup fault poll: this is where an injected worker kill
        // or straggler lands (inside the supervision boundary).
        match faults::poll(faults::Site::Rank(wid as u64)) {
            Some(faults::FaultKind::WorkerKill) => {
                panic!("injected worker kill (rank {wid})");
            }
            Some(faults::FaultKind::Straggler { delay_us }) => {
                std::thread::sleep(Duration::from_micros(delay_us));
                faults::record_recovery(
                    "serve_straggler_absorbed",
                    format!("rank {wid}"),
                    job.attempt,
                    delay_us as f64 * 1e-6,
                );
            }
            _ => {}
        }
        let mut solver = shared.checkout_solver(&key, cfg);
        let out = execute_job(shared, job, &mut solver, token);
        (solver, out)
    }));
    match caught {
        Ok((solver, out)) => {
            shared.return_solver(key, solver);
            Ok(out)
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panic".into());
            Err(msg)
        }
    }
}

/// The job loop proper: build or resume the system, integrate step by
/// step, checkpoint periodically and on preemption. Runs under an
/// installed [`CancelScope`], so deadline/shutdown abort inside the SCF
/// loops with a typed error; preemption is honoured only here, at step
/// boundaries, to keep resumes bitwise.
fn execute_job(
    shared: &Arc<Shared>,
    job: &QueuedJob,
    solver: &mut LdcSolver,
    token: &CancelToken,
) -> ExecOutcome {
    let _scope = CancelScope::install(token.clone());
    let spec = &job.spec;
    let store =
        match CheckpointStore::open(job_dir(&shared.cfg, job.id), shared.cfg.checkpoint_keep) {
            Ok(s) => s,
            Err(e) => {
                return ExecOutcome::Failed {
                    error: e,
                    synced: job.energies.clone(),
                    wrote_checkpoint: false,
                }
            }
        };
    let mut driver = QmdDriver::new(spec.dt, Some(NoseHoover::new(spec.temperature, 2, 200.0)));
    let fail = |error: MqmdError, synced: Vec<f64>, wrote: bool| ExecOutcome::Failed {
        error,
        synced,
        wrote_checkpoint: wrote,
    };

    let (mut system, start_step, mut energies) = if job.has_checkpoint {
        match store.load_latest() {
            Ok(Some(ckp)) => {
                let (system, blob) = driver.restore(&ckp);
                if let Err(e) = solver.import_state(&blob) {
                    return fail(e, job.energies.clone(), false);
                }
                // The stitched energy prefix tracks the checkpoint.
                debug_assert_eq!(job.energies.len() as u64, ckp.step);
                (system, ckp.step, job.energies.clone())
            }
            Ok(None) => {
                return fail(
                    MqmdError::Io(format!("job {} resume checkpoint missing", job.id)),
                    job.energies.clone(),
                    false,
                )
            }
            Err(e) => return fail(e, job.energies.clone(), false),
        }
    } else {
        (spec.build_system(), 0, Vec::new())
    };

    let mut synced = energies.clone();
    let mut wrote = false;
    let mut scf_iterations = 0usize;
    for step in start_step..u64::from(spec.steps) {
        match token.status() {
            Some(CancelReason::Preempt) => {
                // Step boundary: checkpoint and yield the worker.
                let ckp = driver.checkpoint(step, &system, solver.export_state());
                return match store.save(&ckp) {
                    Ok(_) => ExecOutcome::Preempted { energies },
                    Err(e) => fail(e, synced, wrote),
                };
            }
            Some(reason) => {
                return fail(
                    MqmdError::Cancelled {
                        what: format!("job {} at step {step}", job.id),
                        reason,
                    },
                    synced,
                    wrote,
                )
            }
            None => {}
        }
        match driver.try_run(&mut system, solver, 1) {
            Ok(report) => match report.energies.last() {
                Some(&e) => {
                    energies.push(e);
                    scf_iterations += report.scf_iterations;
                }
                None => {
                    return fail(
                        MqmdError::Numerical(format!(
                            "job {} step {step} produced no energy",
                            job.id
                        )),
                        synced,
                        wrote,
                    )
                }
            },
            Err(e) => return fail(e, synced, wrote),
        }
        let done = step + 1;
        if done < u64::from(spec.steps) && done % u64::from(spec.checkpoint_every) == 0 {
            let ckp = driver.checkpoint(done, &system, solver.export_state());
            match store.save(&ckp) {
                Ok(_) => {
                    synced = energies.clone();
                    wrote = true;
                }
                Err(e) => return fail(e, synced, wrote),
            }
        }
    }
    ExecOutcome::Completed(JobResult {
        energies,
        positions: system.positions.clone(),
        velocities: system.velocities.clone(),
        scf_iterations,
    })
}

fn job_dir(cfg: &ServiceConfig, id: u64) -> PathBuf {
    cfg.checkpoint_dir.join(format!("job_{id:08}"))
}

/// Applies an attempt's outcome under the scheduler lock: terminal states
/// settle the ledger and tenant accounting; preemptions and retryable
/// failures requeue. Every path lands in exactly one of those — no
/// outcome leaves a job unaccounted.
fn finish_attempt(
    shared: &Arc<Shared>,
    wid: usize,
    mut job: QueuedJob,
    result: Result<ExecOutcome, String>,
    elapsed: Duration,
) {
    job.consumed += elapsed;
    let cfg = &shared.cfg;
    let mut inner = shared.lock();
    inner.running.remove(&wid);
    let (id, tenant) = (job.id, job.spec.tenant);

    enum Settle {
        Terminal(JobState, &'static str, String),
        Requeue(&'static str, String),
    }
    let settle = match result {
        Ok(ExecOutcome::Completed(res)) => {
            inner.ledger.completed += 1;
            Settle::Terminal(JobState::Completed(res), "completed", String::new())
        }
        Ok(ExecOutcome::Preempted { energies }) => {
            inner.ledger.preemptions += 1;
            if let Some(rec) = inner.ledger.records.get_mut(&id) {
                rec.preemptions += 1;
            }
            // A preemption does not consume an attempt: the job was not
            // at fault, it was shed for priority.
            job.attempt = job.attempt.saturating_sub(1);
            job.energies = energies;
            job.has_checkpoint = true;
            job.ready_at = Instant::now();
            Settle::Requeue("preempted", String::new())
        }
        Ok(ExecOutcome::Failed {
            error,
            synced,
            wrote_checkpoint,
        }) => {
            job.energies = synced;
            job.has_checkpoint |= wrote_checkpoint;
            let budget_left = job.spec.deadline.is_none_or(|b| job.consumed < b);
            if retryable(&error) && job.attempt < cfg.max_attempts && budget_left {
                inner.ledger.retries += 1;
                job.ready_at = Instant::now() + backoff_delay(cfg, id, job.attempt);
                if faults::active() {
                    faults::record_recovery(
                        "serve_retry_backoff",
                        format!("job {id}"),
                        job.attempt,
                        0.0,
                    );
                }
                Settle::Requeue("retrying", error.to_string())
            } else {
                inner.ledger.failed += 1;
                if faults::active() {
                    faults::record_abort("serve_job_failed", format!("job {id}"), job.attempt);
                }
                Settle::Terminal(
                    JobState::Failed {
                        error: error.to_string(),
                    },
                    "failed",
                    error.to_string(),
                )
            }
        }
        Err(panic_msg) => {
            inner.ledger.panics_caught += 1;
            if job.attempt < cfg.max_attempts {
                inner.ledger.retries += 1;
                job.ready_at = Instant::now() + backoff_delay(cfg, id, job.attempt);
                if faults::active() {
                    faults::record_recovery(
                        "serve_requeue_after_panic",
                        format!("rank {wid}"),
                        job.attempt,
                        0.0,
                    );
                }
                Settle::Requeue("retrying", format!("panic: {panic_msg}"))
            } else {
                inner.ledger.failed += 1;
                if faults::active() {
                    faults::record_abort("serve_panic_abort", format!("rank {wid}"), job.attempt);
                }
                Settle::Terminal(
                    JobState::Failed {
                        error: format!("worker panic: {panic_msg}"),
                    },
                    "failed",
                    panic_msg,
                )
            }
        }
    };

    let (state_label, detail) = match settle {
        Settle::Terminal(state, label, detail) => {
            if let Some(rec) = inner.ledger.records.get_mut(&id) {
                rec.state = state;
            }
            if let Some(active) = inner.tenant_active.get_mut(&tenant) {
                *active = active.saturating_sub(1);
            }
            // The job is settled; its checkpoint store is garbage now.
            std::fs::remove_dir_all(job_dir(cfg, id)).ok();
            (label, detail)
        }
        Settle::Requeue(label, detail) => {
            if let Some(rec) = inner.ledger.records.get_mut(&id) {
                rec.state = JobState::Queued;
            }
            inner.queue.push(job);
            (label, detail)
        }
    };
    let depth = inner.queue.len() as u32;
    let running = inner.running.len() as u32;
    drop(inner);
    emit_job_state(id, tenant, state_label, detail);
    events::emit(Event::QueueDepth { depth, running });
    shared.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_seeded_and_grows() {
        let cfg = ServiceConfig::new(std::env::temp_dir());
        let a1 = backoff_delay(&cfg, 7, 1);
        let a1_again = backoff_delay(&cfg, 7, 1);
        assert_eq!(a1, a1_again, "backoff must be deterministic");
        let a3 = backoff_delay(&cfg, 7, 3);
        assert!(a3 >= a1, "later attempts back off at least as long");
        assert!(backoff_delay(&cfg, 7, 30) <= Duration::from_millis(250));
        // Different jobs jitter apart (not a hard guarantee per pair, but
        // these seeds do differ).
        assert_ne!(backoff_delay(&cfg, 1, 2), backoff_delay(&cfg, 2, 2));
    }

    #[test]
    fn retryable_classification() {
        assert!(retryable(&MqmdError::Numerical("x".into())));
        assert!(retryable(&MqmdError::Io("x".into())));
        assert!(retryable(&MqmdError::Convergence {
            what: "scf".into(),
            iterations: 9,
            residual: 1.0,
        }));
        assert!(!retryable(&MqmdError::Invalid("x".into())));
        assert!(!retryable(&MqmdError::Cancelled {
            what: "job".into(),
            reason: CancelReason::Deadline,
        }));
    }
}
