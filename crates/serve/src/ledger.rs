//! The service ledger: every admitted job's lifecycle, every rejection,
//! and the aggregate counters the soak harness audits. Nothing terminal
//! happens to a job without a ledger entry — "no lost jobs" is checked
//! here, not asserted by construction.

use std::collections::BTreeMap;

use mqmd_util::metrics::ServiceCounters;
use mqmd_util::Vec3;

/// Why a submission was refused at admission. Typed so clients (and the
/// soak auditor) can distinguish backpressure from bad input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The global queue is at capacity.
    QueueFull,
    /// The tenant is at its in-flight quota (queued + running).
    QuotaExceeded,
    /// The job's deadline budget is already exhausted at submission.
    OverDeadline,
    /// The spec failed validation.
    InvalidSpec,
}

impl RejectReason {
    /// Stable label used in events and reports.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::QuotaExceeded => "quota_exceeded",
            RejectReason::OverDeadline => "over_deadline",
            RejectReason::InvalidSpec => "invalid_spec",
        }
    }
}

/// Outcome of [`crate::ServiceRuntime::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted; the id names the job in the ledger.
    Accepted(u64),
    /// Refused with a typed reason; nothing was enqueued.
    Rejected(RejectReason),
}

impl Admission {
    /// The job id, if admitted.
    pub fn id(&self) -> Option<u64> {
        match self {
            Admission::Accepted(id) => Some(*id),
            Admission::Rejected(_) => None,
        }
    }
}

/// Completed-job payload: the full per-step energy series and final phase
/// space, enough for the soak's bitwise preemption probe.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobResult {
    /// Total energy after each MD step (Hartree), stitched across
    /// preemptions and resumes.
    pub energies: Vec<f64>,
    /// Final positions.
    pub positions: Vec<Vec3>,
    /// Final velocities.
    pub velocities: Vec<Vec3>,
    /// SCF iterations consumed (final attempt's solver total).
    pub scf_iterations: usize,
}

/// Lifecycle state of an admitted job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobState {
    /// Waiting in the queue (initial state, and after requeue).
    Queued,
    /// Picked up by a worker.
    Running,
    /// Finished all steps.
    Completed(JobResult),
    /// Terminally failed; the string is the typed error's display form.
    Failed { error: String },
}

impl JobState {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Completed(_) | JobState::Failed { .. })
    }

    /// Stable label for events.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed(_) => "completed",
            JobState::Failed { .. } => "failed",
        }
    }
}

/// One admitted job's ledger entry.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Job id (admission order).
    pub id: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Scheduling priority.
    pub priority: u8,
    /// Execution attempts started (1 on the happy path).
    pub attempts: u32,
    /// Times this job was preempted by higher-priority work.
    pub preemptions: u32,
    /// Times an attempt started from a checkpoint.
    pub resumes: u32,
    /// Current state.
    pub state: JobState,
}

/// Aggregate service accounting. Owned by the runtime's scheduler lock;
/// snapshots are handed out by value.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Ledger {
    /// Per-job records, keyed by id, for every *admitted* job.
    pub records: BTreeMap<u64, JobRecord>,
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs that reached [`JobState::Completed`].
    pub completed: u64,
    /// Jobs that reached [`JobState::Failed`].
    pub failed: u64,
    /// Rejections by reason.
    pub rejected_queue_full: u64,
    /// Rejections by reason.
    pub rejected_quota: u64,
    /// Rejections by reason.
    pub rejected_deadline: u64,
    /// Rejections by reason.
    pub rejected_invalid: u64,
    /// Requeues after a retryable failure.
    pub retries: u64,
    /// Checkpoint-backed preemptions (job shed, requeued).
    pub preemptions: u64,
    /// Attempts started from a checkpoint.
    pub resumes: u64,
    /// Worker panics caught by supervision.
    pub panics_caught: u64,
    /// High-water mark of the queued-job count.
    pub queue_depth_peak: u64,
    /// High-water mark of each tenant's in-flight count.
    pub tenant_peak: BTreeMap<u32, u64>,
}

impl Ledger {
    /// Records a rejection.
    pub(crate) fn reject(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::QueueFull => self.rejected_queue_full += 1,
            RejectReason::QuotaExceeded => self.rejected_quota += 1,
            RejectReason::OverDeadline => self.rejected_deadline += 1,
            RejectReason::InvalidSpec => self.rejected_invalid += 1,
        }
    }

    /// Audits the post-drain invariants the service promises. Returns a
    /// list of violations (empty = clean). `quota`/`capacity` are the
    /// runtime limits the peaks are checked against.
    pub fn audit(&self, quota: usize, capacity: usize) -> Vec<String> {
        let mut v = Vec::new();
        if self.submitted != self.records.len() as u64 {
            v.push(format!(
                "submitted counter {} != {} ledger records (lost or phantom jobs)",
                self.submitted,
                self.records.len()
            ));
        }
        let mut completed = 0u64;
        let mut failed = 0u64;
        for rec in self.records.values() {
            match &rec.state {
                JobState::Completed(_) => completed += 1,
                JobState::Failed { .. } => failed += 1,
                other => v.push(format!(
                    "job {} stranded non-terminal ({})",
                    rec.id,
                    other.label()
                )),
            }
        }
        if completed != self.completed || failed != self.failed {
            v.push(format!(
                "terminal counters ({}, {}) disagree with records ({completed}, {failed})",
                self.completed, self.failed
            ));
        }
        if self.queue_depth_peak > capacity as u64 {
            v.push(format!(
                "queue depth peaked at {} > capacity {capacity}",
                self.queue_depth_peak
            ));
        }
        for (&tenant, &peak) in &self.tenant_peak {
            if peak > quota as u64 {
                v.push(format!(
                    "tenant {tenant} in-flight peaked at {peak} > quota {quota}"
                ));
            }
        }
        if self.resumes > self.preemptions + self.retries {
            v.push(format!(
                "{} resumes exceed {} preemptions + {} retries",
                self.resumes, self.preemptions, self.retries
            ));
        }
        v
    }

    /// Flattens into the profile schema's `service` block counters.
    /// `event_drops_by_lane` is supplied by the caller (a snapshot of
    /// [`mqmd_util::events::dropped_by_lane`]).
    pub fn to_service_counters(&self, event_drops_by_lane: BTreeMap<u32, u64>) -> ServiceCounters {
        ServiceCounters {
            submitted: self.submitted,
            completed: self.completed,
            failed: self.failed,
            rejected_queue_full: self.rejected_queue_full,
            rejected_quota: self.rejected_quota,
            rejected_deadline: self.rejected_deadline,
            rejected_invalid: self.rejected_invalid,
            retries: self.retries,
            preemptions: self.preemptions,
            resumes: self.resumes,
            panics_caught: self.panics_caught,
            queue_depth_peak: self.queue_depth_peak,
            event_drops_by_lane,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terminal_record(id: u64, state: JobState) -> JobRecord {
        JobRecord {
            id,
            tenant: 0,
            priority: 0,
            attempts: 1,
            preemptions: 0,
            resumes: 0,
            state,
        }
    }

    #[test]
    fn audit_catches_stranded_and_miscounted_jobs() {
        let mut ledger = Ledger {
            submitted: 2,
            completed: 1,
            ..Default::default()
        };
        ledger.records.insert(
            1,
            terminal_record(1, JobState::Completed(JobResult::default())),
        );
        ledger
            .records
            .insert(2, terminal_record(2, JobState::Queued));
        let violations = ledger.audit(4, 16);
        assert!(violations.iter().any(|v| v.contains("stranded")));

        ledger.records.insert(
            2,
            terminal_record(2, JobState::Failed { error: "x".into() }),
        );
        ledger.failed = 1;
        assert!(ledger.audit(4, 16).is_empty());

        ledger.submitted = 3;
        assert!(!ledger.audit(4, 16).is_empty());
    }

    #[test]
    fn audit_checks_peaks_against_limits() {
        let mut ledger = Ledger {
            queue_depth_peak: 20,
            ..Default::default()
        };
        ledger.tenant_peak.insert(7, 9);
        let v = ledger.audit(4, 16);
        assert!(v.iter().any(|s| s.contains("queue depth")));
        assert!(v.iter().any(|s| s.contains("tenant 7")));
    }

    #[test]
    fn counters_flatten_into_profile_block() {
        let mut ledger = Ledger {
            submitted: 5,
            completed: 4,
            failed: 1,
            retries: 2,
            ..Default::default()
        };
        ledger.tenant_peak.insert(0, 3);
        let mut drops = BTreeMap::new();
        drops.insert(3u32, 7u64);
        let c = ledger.to_service_counters(drops);
        assert_eq!(c.terminal(), 5);
        assert_eq!(c.event_drops(), 7);
        assert_eq!(c.retries, 2);
    }
}
