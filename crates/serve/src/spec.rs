//! Job specifications: what a tenant asks the service to simulate.

use std::time::Duration;

use mqmd_core::global::{BoundaryMode, HartreeSolver, LdcConfig};
use mqmd_md::builders::sic_supercell;
use mqmd_md::AtomicSystem;
use mqmd_util::constants::Element;
use mqmd_util::{MqmdError, Result, Vec3, Xoshiro256pp};

/// Initial geometry of a job. Kept to parametrised built-ins so a spec is
/// a few scalars, fully validatable, and cheap to hash into a plan key.
#[derive(Clone, Debug, PartialEq)]
pub enum Geometry {
    /// One H₂ molecule centred in a cubic cell (`cell` Bohr on a side)
    /// with the given bond length (Bohr).
    H2 { cell: f64, bond: f64 },
    /// A 3C-SiC zinc-blende supercell with `nc` conventional cells per
    /// axis (8 atoms per cell) — the paper's Fig 4/5 material.
    SiC { nc: (usize, usize, usize) },
}

/// A tenant's simulation request. Everything the runtime needs to build
/// the system and solver is in here, so jobs are reproducible from the
/// spec alone (plus the service seed).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Owning tenant (quota bucket).
    pub tenant: u32,
    /// Scheduling priority; higher runs first and may preempt lower.
    pub priority: u8,
    /// Initial geometry.
    pub geometry: Geometry,
    /// MD steps to integrate.
    pub steps: u32,
    /// MD timestep (a.u.).
    pub dt: f64,
    /// Plane-wave cutoff for the domain solver (Hartree).
    pub ecut: f64,
    /// Grid spacing target (Bohr), global and domain.
    pub spacing: f64,
    /// Thermalisation temperature (Kelvin) and velocity seed.
    pub temperature: f64,
    /// Seed for the initial Maxwell–Boltzmann draw.
    pub seed: u64,
    /// Wall-clock budget for the whole job, across attempts. `None` means
    /// unbounded; `Some(0)` is rejected at admission as already over
    /// deadline.
    pub deadline: Option<Duration>,
    /// Write a resume checkpoint every this many completed steps.
    pub checkpoint_every: u32,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            tenant: 0,
            priority: 0,
            geometry: Geometry::H2 {
                cell: 8.0,
                bond: 1.4,
            },
            steps: 2,
            dt: 10.0,
            ecut: 2.0,
            spacing: 1.2,
            temperature: 300.0,
            seed: 5,
            deadline: None,
            checkpoint_every: 1,
        }
    }
}

impl JobSpec {
    /// Validates the spec's physical and resource parameters. Anything
    /// rejected here surfaces as [`crate::RejectReason::InvalidSpec`].
    pub fn validate(&self) -> Result<()> {
        fn bounded(name: &str, v: f64, lo: f64, hi: f64) -> Result<()> {
            if !v.is_finite() || v < lo || v > hi {
                return Err(MqmdError::Invalid(format!(
                    "{name} = {v} outside [{lo}, {hi}]"
                )));
            }
            Ok(())
        }
        if self.steps == 0 || self.steps > 10_000 {
            return Err(MqmdError::Invalid(format!(
                "steps = {} outside [1, 10000]",
                self.steps
            )));
        }
        if self.checkpoint_every == 0 {
            return Err(MqmdError::Invalid("checkpoint_every must be >= 1".into()));
        }
        bounded("dt", self.dt, 1e-3, 1e3)?;
        bounded("ecut", self.ecut, 0.5, 50.0)?;
        bounded("spacing", self.spacing, 0.3, 4.0)?;
        bounded("temperature", self.temperature, 0.0, 1e5)?;
        match self.geometry {
            Geometry::H2 { cell, bond } => {
                bounded("cell", cell, 4.0, 64.0)?;
                bounded("bond", bond, 0.2, 6.0)?;
                if bond >= cell / 2.0 {
                    return Err(MqmdError::Invalid(format!(
                        "bond {bond} does not fit in cell {cell}"
                    )));
                }
            }
            Geometry::SiC { nc } => {
                for (axis, n) in ["x", "y", "z"].iter().zip([nc.0, nc.1, nc.2]) {
                    if n == 0 || n > 2 {
                        return Err(MqmdError::Invalid(format!(
                            "SiC nc.{axis} = {n} outside [1, 2] (service-tier size cap)"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Key under which this job's solver (with its geometry-shaped plan
    /// caches: eigensolver workspaces, MG hierarchy, FFT arena) can be
    /// pooled. Jobs with equal keys produce identical grid/basis shapes,
    /// so a pooled solver's scratch is reusable; job-dependent state is
    /// wiped by [`mqmd_core::global::LdcSolver::reset_job_state`].
    pub fn plan_key(&self) -> String {
        let g = match &self.geometry {
            Geometry::H2 { cell, bond: _ } => format!("h2:{cell:e}"),
            Geometry::SiC { nc } => format!("sic:{}x{}x{}", nc.0, nc.1, nc.2),
        };
        format!("{g}|ecut{:e}|h{:e}", self.ecut, self.spacing)
    }

    /// Builds the initial atomic system. Deterministic in the spec: the
    /// same spec always yields bitwise-identical positions and velocities.
    pub fn build_system(&self) -> AtomicSystem {
        let mut sys = match self.geometry {
            Geometry::H2 { cell, bond } => {
                let mid = cell / 2.0;
                AtomicSystem::new(
                    Vec3::splat(cell),
                    vec![Element::H, Element::H],
                    vec![
                        Vec3::new(mid - bond / 2.0, mid, mid),
                        Vec3::new(mid + bond / 2.0, mid, mid),
                    ],
                )
            }
            Geometry::SiC { nc } => sic_supercell(nc),
        };
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);
        sys.thermalize(self.temperature, &mut rng);
        sys
    }

    /// Baseline LDC solver configuration for this spec (attempt 1; the
    /// retry ladder escalates it via [`escalate`]).
    pub fn ldc_config(&self) -> LdcConfig {
        let nd = match self.geometry {
            Geometry::H2 { .. } => (1, 1, 1),
            Geometry::SiC { nc } => (nc.0.min(2), 1, 1),
        };
        LdcConfig {
            nd,
            buffer: 0.0,
            mode: BoundaryMode::Periodic,
            hartree: HartreeSolver::Fft,
            global_spacing: self.spacing,
            domain_spacing: self.spacing,
            ecut: self.ecut,
            tol_density: 1e-4,
            ..Default::default()
        }
    }
}

/// The retry ladder's configuration escalation: attempt 1 is the spec's
/// baseline; each further attempt grows the SCF iteration budget and
/// softens the density mixing, the same knobs the in-solver rescue ladder
/// reaches for, so a retried job re-enters that ladder with more headroom.
/// Grid shapes are untouched — an escalated config still matches the
/// spec's plan key.
pub fn escalate(base: &LdcConfig, attempt: u32) -> LdcConfig {
    let a = attempt.max(1) as usize;
    let mut cfg = *base;
    cfg.max_scf = base.max_scf * a;
    cfg.mix_alpha = base.mix_alpha * 0.5f64.powi(a as i32 - 1);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates() {
        JobSpec::default().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        for spec in [
            JobSpec {
                steps: 0,
                ..Default::default()
            },
            JobSpec {
                dt: f64::NAN,
                ..Default::default()
            },
            JobSpec {
                ecut: 500.0,
                ..Default::default()
            },
            JobSpec {
                checkpoint_every: 0,
                ..Default::default()
            },
            JobSpec {
                geometry: Geometry::H2 {
                    cell: 8.0,
                    bond: 7.9,
                },
                ..Default::default()
            },
            JobSpec {
                geometry: Geometry::SiC { nc: (9, 1, 1) },
                ..Default::default()
            },
        ] {
            assert!(spec.validate().is_err(), "{spec:?} should be invalid");
        }
    }

    #[test]
    fn build_system_is_deterministic() {
        let spec = JobSpec::default();
        let a = spec.build_system();
        let b = spec.build_system();
        for (p, q) in a.velocities.iter().zip(&b.velocities) {
            assert_eq!(p.x.to_bits(), q.x.to_bits());
        }
    }

    #[test]
    fn plan_key_separates_shapes_not_bonds() {
        let a = JobSpec::default();
        let mut b = a.clone();
        b.geometry = Geometry::H2 {
            cell: 8.0,
            bond: 1.5,
        };
        assert_eq!(a.plan_key(), b.plan_key());
        let mut c = a.clone();
        c.ecut = 3.0;
        assert_ne!(a.plan_key(), c.plan_key());
    }

    #[test]
    fn escalation_grows_budget_and_softens_mixing() {
        let base = JobSpec::default().ldc_config();
        let e2 = escalate(&base, 2);
        assert_eq!(e2.max_scf, base.max_scf * 2);
        assert!(e2.mix_alpha < base.mix_alpha);
        // Shape-relevant fields untouched.
        assert_eq!(e2.ecut, base.ecut);
        assert_eq!(e2.nd, base.nd);
    }
}
