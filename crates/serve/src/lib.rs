//! Multi-tenant QMD job service (the paper's "hydrogen-on-demand" framing
//! as a runtime): simulation jobs are submitted by tenants, pass admission
//! control onto a bounded queue, and are driven by a supervised worker pool
//! over shared solver/plan caches.
//!
//! The service plane is built from the robustness primitives the rest of
//! the workspace already provides, composed rather than re-invented:
//!
//! - **Admission control / backpressure** — per-tenant in-flight quotas and
//!   a bounded global queue; over-limit submissions get a typed
//!   [`RejectReason`], never a silent drop ([`ServiceRuntime::submit`]).
//! - **Deadlines and retries** — per-job wall-clock budgets enforced at SCF
//!   iteration granularity through [`mqmd_util::cancel`]; transient
//!   failures are retried with seeded exponential backoff and a capped
//!   attempt ladder that escalates the SCF configuration (bigger iteration
//!   budget, softer mixing) before a typed abort.
//! - **Checkpoint-backed preemption** — higher-priority arrivals preempt
//!   running work at MD-step boundaries via [`mqmd_md::io::CheckpointStore`];
//!   the shed job is requeued (never lost) and resumes bitwise-identically.
//! - **Supervision** — worker panics (including injected
//!   [`mqmd_util::faults::FaultKind::WorkerKill`]) are caught and the job
//!   requeued or failed with a typed error; every terminal state is
//!   accounted in the [`Ledger`], which `repro_serve` audits under chaos.

pub mod ledger;
pub mod runtime;
pub mod spec;

pub use ledger::{Admission, JobRecord, JobState, Ledger, RejectReason};
pub use runtime::{ServiceConfig, ServiceRuntime};
pub use spec::{Geometry, JobSpec};
