//! Service-plane integration tests: admission control, deadline
//! enforcement, panic supervision, retry under injected faults, and the
//! headline property — a preempted-then-resumed job reproduces the
//! uninterrupted run bitwise.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use mqmd_serve::{Admission, JobSpec, JobState, RejectReason, ServiceConfig, ServiceRuntime};
use mqmd_util::faults::{self, FaultKind, FaultPlan, Site};

/// The fault plane and its stats are process-global; chaos-flavoured
/// tests serialise on this.
fn fault_gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mqmd_serve_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn quick_spec() -> JobSpec {
    JobSpec {
        steps: 1,
        ..Default::default()
    }
}

/// Blocks until `id` is picked up by a worker (so a subsequent
/// higher-priority submit finds every worker busy and must preempt).
fn wait_until_running(rt: &ServiceRuntime, id: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let state = rt.ledger().records[&id].state.clone();
        if matches!(state, JobState::Running) {
            return;
        }
        assert!(
            !state.is_terminal(),
            "job {id} reached {state:?} before it could be observed running"
        );
        assert!(
            std::time::Instant::now() < deadline,
            "job {id} never started running"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

#[test]
fn admission_rejects_are_typed_and_counted() {
    // No workers: jobs stay queued, so the admission arithmetic is exact.
    let mut cfg = ServiceConfig::new(tmp("admission"));
    cfg.workers = 0;
    cfg.queue_capacity = 3;
    cfg.tenant_quota = 2;
    let rt = ServiceRuntime::start(cfg).unwrap();

    // Invalid spec.
    let bad = JobSpec {
        steps: 0,
        ..Default::default()
    };
    assert_eq!(
        rt.submit(bad),
        Admission::Rejected(RejectReason::InvalidSpec)
    );

    // Already over deadline.
    let dead = JobSpec {
        deadline: Some(Duration::ZERO),
        ..quick_spec()
    };
    assert_eq!(
        rt.submit(dead),
        Admission::Rejected(RejectReason::OverDeadline)
    );

    // Tenant 0 fills its quota of 2, third submission bounces.
    assert!(matches!(rt.submit(quick_spec()), Admission::Accepted(_)));
    assert!(matches!(rt.submit(quick_spec()), Admission::Accepted(_)));
    assert_eq!(
        rt.submit(quick_spec()),
        Admission::Rejected(RejectReason::QuotaExceeded)
    );

    // Tenant 1 can still get one job in before the global capacity of 3
    // trips.
    let other = JobSpec {
        tenant: 1,
        ..quick_spec()
    };
    assert!(matches!(rt.submit(other.clone()), Admission::Accepted(_)));
    let third = JobSpec {
        tenant: 2,
        ..quick_spec()
    };
    assert_eq!(
        rt.submit(third),
        Admission::Rejected(RejectReason::QueueFull)
    );

    let ledger = rt.ledger();
    assert_eq!(ledger.submitted, 3);
    assert_eq!(ledger.rejected_invalid, 1);
    assert_eq!(ledger.rejected_deadline, 1);
    assert_eq!(ledger.rejected_quota, 1);
    assert_eq!(ledger.rejected_queue_full, 1);
    assert_eq!(ledger.queue_depth_peak, 3);
    assert_eq!(ledger.tenant_peak.get(&0), Some(&2));
}

#[test]
fn tiny_deadline_fails_typed_not_retried() {
    let _gate = fault_gate();
    let cfg = ServiceConfig::new(tmp("deadline"));
    let rt = ServiceRuntime::start(cfg).unwrap();
    let spec = JobSpec {
        deadline: Some(Duration::from_nanos(1)),
        ..quick_spec()
    };
    let id = rt.submit(spec).id().expect("1ns budget is admitted");
    let ledger = rt.shutdown();
    let rec = &ledger.records[&id];
    match &rec.state {
        JobState::Failed { error } => {
            assert!(
                error.contains("deadline"),
                "typed deadline error, got: {error}"
            );
        }
        other => panic!("expected deadline failure, got {other:?}"),
    }
    assert_eq!(ledger.failed, 1);
    assert_eq!(ledger.retries, 0, "deadline expiry must not burn retries");
    assert!(ledger.audit(4, 16).is_empty(), "{:?}", ledger.audit(4, 16));
}

#[test]
fn injected_worker_kill_is_supervised_and_job_retried() {
    let _gate = fault_gate();
    faults::reset_stats();
    let mut plan = FaultPlan::new();
    plan.push(FaultKind::WorkerKill, Site::Rank(0), 1);
    faults::install(plan);
    let rt = ServiceRuntime::start(ServiceConfig::new(tmp("kill"))).unwrap();
    let id = rt.submit(quick_spec()).id().unwrap();
    let ledger = rt.shutdown();
    faults::clear();

    assert_eq!(ledger.panics_caught, 1, "the injected kill must be caught");
    assert_eq!(ledger.retries, 1, "the killed job must be requeued");
    assert!(
        matches!(ledger.records[&id].state, JobState::Completed(_)),
        "job completes on the retry: {:?}",
        ledger.records[&id].state
    );
    let stats = faults::stats();
    assert!(
        stats.injected <= stats.recovered + stats.aborted,
        "fault ledger unbalanced: {stats:?}"
    );
    assert!(ledger.audit(4, 16).is_empty(), "{:?}", ledger.audit(4, 16));
}

#[test]
fn scf_fault_walks_retry_ladder_to_completion() {
    let _gate = fault_gate();
    faults::reset_stats();
    // Poison the first attempt's SCF; the rescue ladder may absorb it,
    // and if the attempt still fails the service ladder retries it. In
    // both cases the job must end Completed with a balanced ledger.
    let mut plan = FaultPlan::new();
    plan.push(FaultKind::DensityNan, Site::Scf, 2);
    faults::install(plan);
    let rt = ServiceRuntime::start(ServiceConfig::new(tmp("scf_fault"))).unwrap();
    let id = rt.submit(quick_spec()).id().unwrap();
    let ledger = rt.shutdown();
    faults::clear();

    assert!(
        matches!(ledger.records[&id].state, JobState::Completed(_)),
        "job must survive an injected SCF fault: {:?}",
        ledger.records[&id].state
    );
    let stats = faults::stats();
    assert!(
        stats.injected <= stats.recovered + stats.aborted,
        "fault ledger unbalanced: {stats:?}"
    );
    assert!(ledger.audit(4, 16).is_empty(), "{:?}", ledger.audit(4, 16));
}

#[test]
fn preempted_job_resumes_bitwise_identical() {
    let _gate = fault_gate();
    let probe = JobSpec {
        steps: 3,
        ..Default::default()
    };

    // Leg A: the probe runs uninterrupted.
    let rt = ServiceRuntime::start(ServiceConfig::new(tmp("preempt_a"))).unwrap();
    let id_a = rt.submit(probe.clone()).id().unwrap();
    let ledger_a = rt.shutdown();
    let JobState::Completed(ref_result) = ledger_a.records[&id_a].state.clone() else {
        panic!("probe failed: {:?}", ledger_a.records[&id_a].state);
    };
    assert_eq!(ref_result.energies.len(), 3);

    // Leg B: same probe, but a high-priority job lands right behind it
    // on a single-worker runtime, preempting it at a step boundary.
    let rt = ServiceRuntime::start(ServiceConfig::new(tmp("preempt_b"))).unwrap();
    let id_b = rt.submit(probe).id().unwrap();
    wait_until_running(&rt, id_b);
    let vip = JobSpec {
        tenant: 1,
        priority: 9,
        steps: 1,
        ..Default::default()
    };
    let id_vip = rt.submit(vip).id().unwrap();
    let ledger_b = rt.shutdown();

    let JobState::Completed(got) = ledger_b.records[&id_b].state.clone() else {
        panic!(
            "preempted probe failed: {:?}",
            ledger_b.records[&id_b].state
        );
    };
    assert!(
        matches!(ledger_b.records[&id_vip].state, JobState::Completed(_)),
        "preemptor failed: {:?}",
        ledger_b.records[&id_vip].state
    );
    // The VIP was submitted while the probe held the only worker mid-step
    // (each step is a full SCF solve, far slower than the submit), so a
    // preemption must have happened — and the resumed trajectory must be
    // bit-for-bit the uninterrupted one.
    assert!(
        ledger_b.preemptions >= 1,
        "expected the VIP to preempt the probe: {ledger_b:?}"
    );
    assert_eq!(ledger_b.resumes, ledger_b.preemptions);
    assert_eq!(got.energies.len(), ref_result.energies.len());
    for (a, b) in got.energies.iter().zip(&ref_result.energies) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "energy series diverged: {a} vs {b}"
        );
    }
    for (a, b) in got.positions.iter().zip(&ref_result.positions) {
        assert_eq!(a.x.to_bits(), b.x.to_bits());
        assert_eq!(a.y.to_bits(), b.y.to_bits());
        assert_eq!(a.z.to_bits(), b.z.to_bits());
    }
    for (a, b) in got.velocities.iter().zip(&ref_result.velocities) {
        assert_eq!(a.x.to_bits(), b.x.to_bits());
        assert_eq!(a.y.to_bits(), b.y.to_bits());
        assert_eq!(a.z.to_bits(), b.z.to_bits());
    }
    assert!(
        ledger_b.audit(4, 16).is_empty(),
        "{:?}",
        ledger_b.audit(4, 16)
    );
}
