//! The global LDC-DFT self-consistent-field driver (paper Fig 2).
//!
//! Each SCF iteration:
//!
//! 1. the Hartree potential of the current global density is solved on the
//!    **global real-space grid by multigrid** (the scalable half of GSLF,
//!    §3.2) and combined with the LDA XC potential;
//! 2. every domain solves its Kohn–Sham problem **in parallel** (rayon — the
//!    shared-memory analogue of the paper's domain-level MPI task
//!    decomposition, §3.3) with the globally informed potential sampled onto
//!    its local grid, plus — in LDC mode — the density-adaptive boundary
//!    potential `v^bc_α = (ρ_α − ρ)/ξ` of Eqs. (2)–(3);
//! 3. one **global chemical potential** is found from the core-weighted
//!    electron count `N = Σ_α Σ_n f(ε^α_n; μ)·w^α_n` (Eq. (c));
//! 4. the global density is reassembled through the partition of unity
//!    `ρ = Σ_α pα·ρα` (Eq. (b)) and mixed.
//!
//! Only two global objects couple the domains — the density ρ(r) and the
//! scalar μ — which is precisely the communication-avoiding abstraction the
//! paper credits for its 0.984 weak-scaling efficiency (§5.1).

use crate::domain_solver::{solve_domain_with, DomainBands, DomainSetup};
use mqmd_dft::density::fermi;
use mqmd_dft::eigensolver::EigWorkspace;
use mqmd_dft::ewald::ewald;
use mqmd_dft::forces::{local_forces, nonlocal_forces};
use mqmd_dft::hamiltonian::ionic_local_potential;
use mqmd_dft::scf::initial_density;
use mqmd_dft::solver::{atoms_of, grid_for_cell};
use mqmd_dft::xc;
use mqmd_grid::{DomainDecomposition, UniformGrid3};
use mqmd_linalg::CMatrix;
use mqmd_md::{AtomicSystem, ForceField, ForceResult};
use mqmd_multigrid::{FftPoisson, MgHierarchy, PoissonMultigrid};
use mqmd_util::workspace::{self, Workspace};
use mqmd_util::{faults, MqmdError, Result, Vec3};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// Poison-safe lock for the wave-function/workspace caches: a panicking
/// domain solve on a sibling rayon thread must not wedge every later SCF
/// iteration (the caches hold plain data, always valid to reuse).
fn lock_cache<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Treatment of the artificial domain boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BoundaryMode {
    /// Plain divide-and-conquer: periodic domain boundary, no correction.
    Periodic,
    /// Lean DC (the paper's contribution): add the linear-response boundary
    /// potential of Eq. (2), `v^bc = ∂v/∂ρ·(ρα − ρ)` with the local
    /// approximation `∂v/∂ρ ≈ −1/ξ` — the inverse density response is
    /// negative definite (raising the potential somewhere *lowers* the
    /// density there), so a density deficit gets an attractive correction.
    /// ξ = 0.333 a.u. is the paper's fitted magnitude.
    DensityAdaptive {
        /// Response-parameter magnitude ξ (a.u., positive).
        xi: f64,
    },
}

impl BoundaryMode {
    /// The paper's fitted ξ = 0.333 a.u.
    pub fn ldc_default() -> Self {
        BoundaryMode::DensityAdaptive { xi: 0.333 }
    }
}

/// Which solver computes the global Hartree potential.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HartreeSolver {
    /// Geometric multigrid (the paper's GSLF choice; default).
    Multigrid,
    /// Spectral FFT solver (ablation/verification alternative).
    Fft,
}

/// Parameters of an LDC-DFT calculation.
#[derive(Clone, Copy, Debug)]
pub struct LdcConfig {
    /// Domain lattice (how many cores per axis).
    pub nd: (usize, usize, usize),
    /// Buffer thickness b (Bohr).
    pub buffer: f64,
    /// Boundary treatment (DC vs LDC).
    pub mode: BoundaryMode,
    /// Global Hartree solver.
    pub hartree: HartreeSolver,
    /// Global-grid target spacing (Bohr).
    pub global_spacing: f64,
    /// Domain-grid target spacing (Bohr).
    pub domain_spacing: f64,
    /// Plane-wave cutoff of the domain solver (Hartree).
    pub ecut: f64,
    /// Electronic temperature k_B·T (Hartree).
    pub kt: f64,
    /// Linear density-mixing fraction.
    pub mix_alpha: f64,
    /// Maximum SCF iterations.
    pub max_scf: usize,
    /// Density-residual tolerance `∫|Δρ|/N_e`.
    pub tol_density: f64,
    /// Davidson iterations per domain per SCF step.
    pub davidson_iters: usize,
    /// Davidson residual tolerance.
    pub davidson_tol: f64,
    /// Extra bands per domain beyond `⌈n_electrons-in-box/2⌉`.
    pub extra_bands: usize,
}

impl Default for LdcConfig {
    fn default() -> Self {
        Self {
            nd: (2, 2, 2),
            buffer: 2.0,
            mode: BoundaryMode::ldc_default(),
            hartree: HartreeSolver::Multigrid,
            global_spacing: 0.9,
            domain_spacing: 0.9,
            ecut: 3.0,
            kt: 0.01,
            mix_alpha: 0.4,
            max_scf: 60,
            tol_density: 1e-5,
            davidson_iters: 12,
            davidson_tol: 1e-7,
            extra_bands: 4,
        }
    }
}

/// Energy components of an LDC solve (Hartree).
#[derive(Clone, Copy, Debug, Default)]
pub struct LdcBreakdown {
    /// Partition-weighted band energy Σ f·⟨pα·H⟩.
    pub band: f64,
    /// Double-counting integral ∫ρ·V_H (input potential).
    pub hartree_dc: f64,
    /// Double-counting integral ∫ρ·v_xc.
    pub vxc_rho: f64,
    /// Boundary-potential double counting.
    pub bc_dc: f64,
    /// Hartree energy ½∫ρ·V_H[ρ].
    pub e_h: f64,
    /// XC energy.
    pub e_xc: f64,
    /// Ion–ion Ewald energy.
    pub ewald: f64,
    /// Electronic entropy −TS.
    pub entropy: f64,
}

/// Converged LDC-DFT state of one ionic configuration.
pub struct LdcState {
    /// Total free energy (Hartree).
    pub energy: f64,
    /// Chemical potential μ.
    pub mu: f64,
    /// Forces on all ions.
    pub forces: Vec<Vec3>,
    /// Global density on the global grid.
    pub density: Vec<f64>,
    /// SCF iterations used.
    pub scf_iterations: usize,
    /// Number of non-empty domains.
    pub n_domains: usize,
    /// Final density residual.
    pub density_residual: f64,
    /// Concatenated (eigenvalue, core-weight) spectrum of all domains.
    pub spectrum: Vec<(f64, f64)>,
    /// Energy components.
    pub breakdown: LdcBreakdown,
}

/// The LDC-DFT solver with per-domain wave-function caching across calls.
pub struct LdcSolver {
    /// Configuration (public: benches sweep `buffer`/`mode` in place).
    pub config: LdcConfig,
    psi_cache: HashMap<usize, CMatrix>,
    /// Last solve's per-domain densities ρα — checkpoint payload only
    /// (never seeds the next solve, so restart determinism is preserved).
    rho_cache: HashMap<usize, Vec<f64>>,
    /// Per-domain eigensolver workspaces, persisted across SCF iterations
    /// and MD steps so steady-state domain solves run allocation-free.
    eig_cache: HashMap<usize, EigWorkspace>,
    /// Preplanned multigrid V-cycle scratch for the global Hartree solve,
    /// persisted across MD steps (replanned only if the global grid
    /// changes).
    mg_hier: Option<MgHierarchy>,
    /// Arena for global-grid FFT scratch (spectral Hartree path),
    /// persisted across MD steps.
    gws: Workspace,
    /// Cumulative SCF iterations across all `solve` calls.
    pub total_scf_iterations: usize,
}

/// Finds μ with `Σ_i f(ε_i; μ)·w_i = n_electrons` over core-weighted levels.
pub fn weighted_mu(levels: &[(f64, f64)], n_electrons: f64, kt: f64) -> f64 {
    assert!(kt > 0.0, "the global μ search assumes finite smearing");
    let capacity: f64 = levels.iter().map(|&(_, w)| 2.0 * w).sum();
    if capacity < n_electrons - 1e-9 {
        // Early-SCF band sets can be slightly weight-deficient (the core
        // weights of unconverged high bands are unpredictable). Fill every
        // band; the density assembly rescales ∫ρ = N, and the deficit
        // shrinks as the bands converge.
        let e_max = levels
            .iter()
            .map(|&(e, _)| e)
            .fold(f64::NEG_INFINITY, f64::max);
        return e_max + 20.0 * kt;
    }
    let count = |mu: f64| -> f64 { levels.iter().map(|&(e, w)| w * fermi(e, mu, kt)).sum() };
    let mut lo = levels.iter().map(|&(e, _)| e).fold(f64::INFINITY, f64::min) - 20.0 * kt - 1.0;
    let mut hi = levels
        .iter()
        .map(|&(e, _)| e)
        .fold(f64::NEG_INFINITY, f64::max)
        + 20.0 * kt
        + 1.0;
    let mut mu = 0.5 * (lo + hi);
    for _ in 0..200 {
        let err = count(mu) - n_electrons;
        if err.abs() < 1e-12 {
            break;
        }
        if err > 0.0 {
            hi = mu;
        } else {
            lo = mu;
        }
        // Newton step with bisection safeguard (the paper's Newton–Raphson).
        let dn: f64 = levels
            .iter()
            .map(|&(e, w)| {
                let f = fermi(e, mu, kt);
                w * f * (2.0 - f) / (2.0 * kt)
            })
            .sum();
        if dn > 1e-14 {
            let newton = mu - err / dn;
            if newton > lo && newton < hi {
                mu = newton;
                continue;
            }
        }
        mu = 0.5 * (lo + hi);
    }
    mu
}

impl LdcSolver {
    /// Creates a solver.
    pub fn new(config: LdcConfig) -> Self {
        Self {
            config,
            psi_cache: HashMap::new(),
            rho_cache: HashMap::new(),
            eig_cache: HashMap::new(),
            mg_hier: None,
            gws: Workspace::new(),
            total_scf_iterations: 0,
        }
    }

    /// Drops cached wave functions and workspaces (needed when changing
    /// domain topology or basis parameters between calls).
    pub fn clear_cache(&mut self) {
        self.psi_cache.clear();
        self.rho_cache.clear();
        self.eig_cache.clear();
        self.mg_hier = None;
    }

    /// Drops per-*job* state (warm-start bands, cached densities, the SCF
    /// counter) while keeping geometry-keyed *plan* scratch — eigensolver
    /// workspaces, the multigrid hierarchy, the Hartree arena. The service
    /// runtime calls this when handing a pooled solver to a new job with
    /// the same grid shape: pooled scratch is bitwise-inert (pinned by the
    /// PR 3 identity tests), so the next job's trajectory is independent
    /// of pool history while still sharing plans.
    pub fn reset_job_state(&mut self) {
        self.psi_cache.clear();
        self.rho_cache.clear();
        self.total_scf_iterations = 0;
    }

    /// Serialises the solver's restartable state (warm-start wave functions
    /// per domain, last per-domain densities, cumulative SCF count) for a
    /// [`mqmd_md::io::Checkpoint`]'s opaque solver payload. Domains are
    /// written in id order so equal states produce equal bytes.
    pub fn export_state(&self) -> Vec<u8> {
        use bytes::{BufMut, BytesMut};
        let mut buf = BytesMut::new();
        mqmd_md::io::write_varint(&mut buf, self.total_scf_iterations as u64);
        let mut psi_ids: Vec<usize> = self.psi_cache.keys().copied().collect();
        psi_ids.sort_unstable();
        mqmd_md::io::write_varint(&mut buf, psi_ids.len() as u64);
        for id in psi_ids {
            let m = &self.psi_cache[&id];
            mqmd_md::io::write_varint(&mut buf, id as u64);
            mqmd_md::io::write_varint(&mut buf, m.rows() as u64);
            mqmd_md::io::write_varint(&mut buf, m.cols() as u64);
            for z in m.data() {
                buf.put_f64(z.re);
                buf.put_f64(z.im);
            }
        }
        let mut rho_ids: Vec<usize> = self.rho_cache.keys().copied().collect();
        rho_ids.sort_unstable();
        mqmd_md::io::write_varint(&mut buf, rho_ids.len() as u64);
        for id in rho_ids {
            let rho = &self.rho_cache[&id];
            mqmd_md::io::write_varint(&mut buf, id as u64);
            mqmd_md::io::write_varint(&mut buf, rho.len() as u64);
            for &x in rho {
                buf.put_f64(x);
            }
        }
        buf.freeze().to_vec()
    }

    /// Restores state captured by [`LdcSolver::export_state`]. Eigensolver
    /// workspaces and multigrid plans are scratch and rebuilt lazily.
    pub fn import_state(&mut self, data: &[u8]) -> Result<()> {
        use bytes::Bytes;
        use mqmd_md::io::read_varint;
        let mut buf = Bytes::from(data.to_vec());
        self.total_scf_iterations = read_varint(&mut buf)? as usize;
        self.psi_cache.clear();
        self.rho_cache.clear();
        let n_psi = read_varint(&mut buf)? as usize;
        for _ in 0..n_psi {
            let id = read_varint(&mut buf)? as usize;
            let rows = read_varint(&mut buf)? as usize;
            let cols = read_varint(&mut buf)? as usize;
            let n = rows
                .checked_mul(cols)
                .filter(|&n| buf.len() >= 16 * n)
                .ok_or_else(|| MqmdError::Io("truncated solver state (psi)".into()))?;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                use bytes::Buf;
                data.push(mqmd_util::Complex64::new(buf.get_f64(), buf.get_f64()));
            }
            self.psi_cache
                .insert(id, CMatrix::from_vec(rows, cols, data));
        }
        let n_rho = read_varint(&mut buf)? as usize;
        for _ in 0..n_rho {
            let id = read_varint(&mut buf)? as usize;
            let len = read_varint(&mut buf)? as usize;
            if buf.len() < 8 * len {
                return Err(MqmdError::Io("truncated solver state (rho)".into()));
            }
            let mut rho = Vec::with_capacity(len);
            for _ in 0..len {
                use bytes::Buf;
                rho.push(buf.get_f64());
            }
            self.rho_cache.insert(id, rho);
        }
        Ok(())
    }

    /// Solves the electronic structure of `system` with LDC-DFT.
    pub fn solve(&mut self, system: &AtomicSystem) -> Result<LdcState> {
        let cfg = self.config;
        let dd = DomainDecomposition::new(system.cell, cfg.nd, cfg.buffer);
        let global_grid = grid_for_cell(system.cell, cfg.global_spacing);
        let n_electrons = system.valence_electrons() as f64;
        let atoms_global = atoms_of(system);

        // Global ionic potential (Eq. 3's V_ion), evaluated once and sampled
        // onto each domain grid during setup.
        let v_ion_global = ionic_local_potential(&global_grid, &atoms_global);

        // Geometry phase: domain setups (parallel; independent).
        let setups: Vec<DomainSetup> = dd
            .domains()
            .par_iter()
            .filter_map(|d| {
                DomainSetup::build(
                    d,
                    &dd,
                    system,
                    cfg.domain_spacing,
                    cfg.ecut,
                    cfg.extra_bands,
                    &global_grid,
                    &v_ion_global,
                )
            })
            .collect();
        if setups.is_empty() {
            return Err(MqmdError::Invalid("no atoms in any domain".into()));
        }

        // Global Poisson machinery: the V-cycle hierarchy is planned once
        // per solve and reused by every SCF iteration's two Hartree calls.
        let mg = PoissonMultigrid::with_defaults(global_grid.clone());
        let mut mg_hier = match cfg.hartree {
            HartreeSolver::Multigrid => Some(match self.mg_hier.take() {
                Some(h)
                    if h.fine_len() == global_grid.len()
                        && h.coarse_levels() + 1 == mg.levels() =>
                {
                    workspace::record_reuse();
                    h
                }
                _ => mg.plan(),
            }),
            HartreeSolver::Fft => None,
        };
        let fft_poisson = FftPoisson::new(global_grid.clone());
        // Arena for the global-grid FFT scratch (spectral Hartree path),
        // taken out of self for the duration of the solve.
        let gws = std::mem::take(&mut self.gws);

        let ion_positions: Vec<Vec3> = atoms_global.iter().map(|(_, r)| *r).collect();
        let ion_charges: Vec<f64> = atoms_global.iter().map(|(p, _)| p.z_val).collect();
        let ew = ewald(
            global_grid.lengths_vec(),
            &ion_positions,
            &ion_charges,
            None,
        );

        let mut rho = initial_density(&global_grid, &atoms_global, n_electrons);
        // Previous-iteration domain densities, for the LDC boundary potential.
        let mut rho_domains: HashMap<usize, Vec<f64>> = HashMap::new();
        let psi_cache = Mutex::new(std::mem::take(&mut self.psi_cache));
        let eig_cache = Mutex::new(std::mem::take(&mut self.eig_cache));

        // Global-grid potential fields, allocated once and rewritten in
        // place each SCF iteration.
        let n_g = global_grid.len();
        let mut v_h = vec![0.0; n_g];
        let mut v_xc = vec![0.0; n_g];
        let mut v_hxc = vec![0.0; n_g];
        let mut v_h_out = vec![0.0; n_g];

        #[allow(clippy::type_complexity)]
        let mut outcome: Option<(
            f64,
            f64,
            Vec<f64>,
            f64,
            Vec<(f64, f64)>,
            usize,
            LdcBreakdown,
        )> = None;
        let mut alpha = cfg.mix_alpha;
        let mut prev_residual = f64::INFINITY;
        for iter in 1..=cfg.max_scf {
            let _span = mqmd_util::trace::span("scf_iter");
            // Cooperative cancellation: deadline/shutdown abort between
            // global SCF iterations (one relaxed load when the service
            // plane is idle). Preemption is not honoured here — only at MD
            // step boundaries, so preempted jobs resume bitwise.
            if let Some(reason) = mqmd_util::cancel::poll_abort() {
                return Err(MqmdError::Cancelled {
                    what: format!("LDC SCF iteration {iter}"),
                    reason,
                });
            }
            match (cfg.hartree, mg_hier.as_mut()) {
                (HartreeSolver::Multigrid, Some(hier)) => {
                    mg.hartree_with(&rho, &mut v_h, hier)?;
                }
                _ => fft_poisson.hartree_into(&rho, &mut v_h, &gws),
            }
            xc::vxc_field(&rho, &mut v_xc);
            for (o, (a, b)) in v_hxc.iter_mut().zip(v_h.iter().zip(&v_xc)) {
                *o = a + b;
            }

            // Conquer: solve every domain in parallel.
            let solved: Vec<(usize, DomainBands)> = setups
                .par_iter()
                .map(|setup| {
                    let v_hxc_local = setup.sample_global_field(&global_grid, &v_hxc);
                    let v_bc = match (cfg.mode, rho_domains.get(&setup.domain.id)) {
                        (BoundaryMode::DensityAdaptive { xi }, Some(rho_prev)) => {
                            // Eq. (2) with the correction confined to the
                            // buffer: weight by (1 − pα) so the boundary
                            // potential acts where the artificial-BC density
                            // error lives and vanishes deep in the core
                            // (where the lagged Δρ is noise, not signal).
                            let rho_global_local = setup.sample_global_field(&global_grid, &rho);
                            rho_prev
                                .iter()
                                .zip(&rho_global_local)
                                .zip(&setup.p_alpha)
                                .map(|((a, b), p)| -(1.0 - p) * (a - b) / xi)
                                .collect()
                        }
                        _ => vec![0.0; setup.grid.len()],
                    };
                    let psi0 = lock_cache(&psi_cache).remove(&setup.domain.id);
                    // Keep a copy of the warm-start bands for the retry
                    // ladder only while a fault plan is installed — healthy
                    // production runs pay nothing for the rescue path.
                    let psi0_backup = if faults::active() { psi0.clone() } else { None };
                    let mut ew = lock_cache(&eig_cache)
                        .remove(&setup.domain.id)
                        .unwrap_or_default();
                    let first = solve_domain_with(
                        setup,
                        &v_hxc_local,
                        &v_bc,
                        psi0,
                        cfg.davidson_iters,
                        cfg.davidson_tol,
                        &mut ew,
                    );
                    let bands = match first {
                        Ok(b) => Ok(b),
                        Err(first_err) => {
                            // Retry ladder, mirroring a failed-rank requeue:
                            // rung 1 re-runs from the cached bands (if the
                            // fault plane kept a copy), rung 2 from scratch;
                            // both on a fresh workspace, since the failed
                            // solve may have left the old one inconsistent.
                            let site = faults::Site::Domain(setup.domain.id as u64).describe();
                            let mut rescued = None;
                            if let Some(p) = psi0_backup {
                                let retry_sw = mqmd_util::timer::Stopwatch::start();
                                let mut ew_retry = EigWorkspace::default();
                                if let Ok(b) = solve_domain_with(
                                    setup,
                                    &v_hxc_local,
                                    &v_bc,
                                    Some(p),
                                    cfg.davidson_iters,
                                    cfg.davidson_tol,
                                    &mut ew_retry,
                                ) {
                                    faults::record_recovery(
                                        "domain_retry_cached",
                                        site.clone(),
                                        1,
                                        retry_sw.seconds(),
                                    );
                                    ew = ew_retry;
                                    rescued = Some(b);
                                }
                            }
                            if rescued.is_none() {
                                let retry_sw = mqmd_util::timer::Stopwatch::start();
                                let mut ew_retry = EigWorkspace::default();
                                match solve_domain_with(
                                    setup,
                                    &v_hxc_local,
                                    &v_bc,
                                    None,
                                    cfg.davidson_iters,
                                    cfg.davidson_tol,
                                    &mut ew_retry,
                                ) {
                                    Ok(b) => {
                                        faults::record_recovery(
                                            "domain_retry_scratch",
                                            site.clone(),
                                            2,
                                            retry_sw.seconds(),
                                        );
                                        ew = ew_retry;
                                        rescued = Some(b);
                                    }
                                    Err(_) => faults::record_abort("domain_abort", site, 2),
                                }
                            }
                            rescued.ok_or(first_err)
                        }
                    };
                    lock_cache(&eig_cache).insert(setup.domain.id, ew);
                    Ok((setup.domain.id, bands?))
                })
                .collect::<Result<Vec<_>>>()?;

            // Global chemical potential over the weighted spectrum.
            let mut spectrum: Vec<(f64, f64)> = Vec::new();
            for (_, bands) in &solved {
                for (&e, &w) in bands.eigenvalues.iter().zip(&bands.weights) {
                    spectrum.push((e, w));
                }
            }
            let mu = weighted_mu(&spectrum, n_electrons, cfg.kt);

            // Domain densities with global occupations; cache psi and ρα.
            let mut band_energy = 0.0;
            let mut entropy = 0.0;
            let mut e_bc_dc = 0.0;
            {
                let mut cache = lock_cache(&psi_cache);
                for (setup, (id, bands)) in setups.iter().zip(solved) {
                    debug_assert_eq!(setup.domain.id, id);
                    let mut rho_a = vec![0.0; setup.grid.len()];
                    for (n, dens) in bands.band_densities.iter().enumerate() {
                        let f = fermi(bands.eigenvalues[n], mu, cfg.kt);
                        if f > 1e-14 {
                            for (r, d) in rho_a.iter_mut().zip(dens) {
                                *r += f * d;
                            }
                        }
                        let w = bands.weights[n];
                        // Yang's DC band energy: the partition-weighted
                        // Hamiltonian expectation, NOT w·ε (pα and H do not
                        // commute; w·ε double-counts buffer potential).
                        band_energy += f * bands.h_weights[n];
                        let x: f64 = f / 2.0;
                        if x > 1e-12 && x < 1.0 - 1e-12 {
                            entropy += 2.0 * cfg.kt * w * (x * x.ln() + (1.0 - x) * (1.0 - x).ln());
                        }
                    }
                    // v_bc double-counting correction: ∫ pα·ρα·v_bc with
                    // the same masked, signed v_bc the Hamiltonian used.
                    if let (BoundaryMode::DensityAdaptive { xi }, Some(rho_prev)) =
                        (cfg.mode, rho_domains.get(&setup.domain.id))
                    {
                        let rho_global_local = setup.sample_global_field(&global_grid, &rho);
                        let dv = setup.grid.dv();
                        e_bc_dc += setup
                            .p_alpha
                            .iter()
                            .zip(&rho_a)
                            .zip(rho_prev.iter().zip(&rho_global_local))
                            .map(|((p, ra), (prev, glob))| {
                                p * ra * (-(1.0 - p) * (prev - glob) / xi)
                            })
                            .sum::<f64>()
                            * dv;
                    }
                    cache.insert(id, bands.psi);
                    rho_domains.insert(setup.domain.id, rho_a);
                }
            }

            // Recombine: assemble ρ_out = Σα pα·ρα on the global grid.
            // Count the logical communication of the GSLF tree reduction:
            // one upward message per domain carrying its density payload
            // (cost pricing happens in mqmd-parallel's machine model).
            let _gd_span = mqmd_util::trace::span("global_density");
            let comm_bytes: u64 = rho_domains.values().map(|r| 8 * r.len() as u64).sum();
            mqmd_util::trace::add_comm(rho_domains.len() as u64, comm_bytes, 0.0);
            let rho_out = assemble_density(&global_grid, &dd, &setups, &rho_domains, n_electrons);
            drop(_gd_span);

            let residual: f64 = rho
                .iter()
                .zip(&rho_out)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                * global_grid.dv()
                / n_electrons;

            // Total energy with the standard double-counting corrections
            // (direct Σ·dv sums — identical to `integrate` of the product
            // field, without materialising it).
            let dv = global_grid.dv();
            let hartree_dc: f64 = rho_out.iter().zip(&v_h).map(|(r, v)| r * v).sum::<f64>() * dv;
            let vxc_rho: f64 = rho_out.iter().zip(&v_xc).map(|(r, v)| r * v).sum::<f64>() * dv;
            match (cfg.hartree, mg_hier.as_mut()) {
                (HartreeSolver::Multigrid, Some(hier)) => {
                    mg.hartree_with(&rho_out, &mut v_h_out, hier)?;
                }
                _ => fft_poisson.hartree_into(&rho_out, &mut v_h_out, &gws),
            }
            let e_h = 0.5
                * rho_out
                    .iter()
                    .zip(&v_h_out)
                    .map(|(r, v)| r * v)
                    .sum::<f64>()
                * dv;
            let e_xc = xc::exc_energy(&rho_out, global_grid.dv());
            let total =
                band_energy - hartree_dc - vxc_rho - e_bc_dc + e_h + e_xc + ew.energy + entropy;
            let breakdown = LdcBreakdown {
                band: band_energy,
                hartree_dc,
                vxc_rho,
                bc_dc: e_bc_dc,
                e_h,
                e_xc,
                ewald: ew.energy,
                entropy,
            };

            mqmd_util::events::emit(mqmd_util::events::Event::ScfIteration {
                iter: iter as u32,
                residual,
                e_total: total,
                mix: alpha,
            });

            if residual < cfg.tol_density {
                outcome = Some((total, mu, rho_out, residual, spectrum, iter, breakdown));
                break;
            }
            outcome = Some((
                total,
                mu,
                rho_out.clone(),
                residual,
                spectrum,
                iter,
                breakdown,
            ));
            // Adaptive linear mixing: back off on charge sloshing, recover
            // slowly while converging.
            if residual > prev_residual {
                alpha = (alpha * 0.6).max(0.05);
            } else {
                alpha = (alpha * 1.05).min(cfg.mix_alpha);
            }
            prev_residual = residual;
            for (r_in, r_out) in rho.iter_mut().zip(&rho_out) {
                *r_in = (1.0 - alpha) * *r_in + alpha * r_out;
            }
        }

        self.psi_cache = psi_cache.into_inner().unwrap_or_else(|e| e.into_inner());
        self.eig_cache = eig_cache.into_inner().unwrap_or_else(|e| e.into_inner());
        self.mg_hier = mg_hier.take();
        self.gws = gws;
        self.rho_cache = rho_domains;
        let (energy, mu, density, residual, spectrum, iters, breakdown) =
            outcome.expect("at least one SCF iteration ran");
        if residual >= cfg.tol_density {
            return Err(MqmdError::Convergence {
                what: "LDC-DFT SCF".into(),
                iterations: cfg.max_scf,
                residual,
            });
        }
        self.total_scf_iterations += iters;

        // Forces: local (global density) + Ewald + per-domain nonlocal for
        // core-owned atoms.
        let mut forces = local_forces(&global_grid, &atoms_global, &density);
        for (f, fe) in forces.iter_mut().zip(&ew.forces) {
            *f += *fe;
        }
        let nl_forces: Vec<Vec<Vec3>> = setups
            .par_iter()
            .map(|setup| {
                let mut out = vec![Vec3::ZERO; system.len()];
                let psi = match self.psi_cache.get(&setup.domain.id) {
                    Some(p) => p,
                    None => return out,
                };
                if let Some(nl) = &setup.nonlocal {
                    let occ: Vec<f64> = self
                        .spectrum_occupations(setup, &density, mu)
                        .unwrap_or_else(|| vec![0.0; psi.cols()]);
                    let f_local = nonlocal_forces(
                        &setup.basis,
                        setup.atoms.len(),
                        &nl.owner,
                        &nl.b,
                        &nl.d,
                        psi,
                        &occ,
                    );
                    for (local_idx, f) in f_local.into_iter().enumerate() {
                        let (_, _, global_idx) = setup.atoms[local_idx];
                        // Only the core owner contributes this atom's force.
                        if setup.core_atoms[local_idx] {
                            out[global_idx] += f;
                        }
                    }
                }
                out
            })
            .collect();
        for nf in nl_forces {
            for (f, add) in forces.iter_mut().zip(nf) {
                *f += add;
            }
        }

        Ok(LdcState {
            energy,
            mu,
            forces,
            density,
            scf_iterations: iters,
            n_domains: setups.len(),
            density_residual: residual,
            spectrum,
            breakdown,
        })
    }

    /// Occupations of a domain's cached bands at the converged μ — used for
    /// the nonlocal force term. Re-derives eigenvalues from the cached psi
    /// via a cheap Rayleigh quotient against the *ionic* part only is wrong;
    /// instead we reuse the final spectrum ordering, which matches because
    /// solve() caches psi in eigenvalue order.
    fn spectrum_occupations(
        &self,
        setup: &DomainSetup,
        _density: &[f64],
        mu: f64,
    ) -> Option<Vec<f64>> {
        let psi = self.psi_cache.get(&setup.domain.id)?;
        // The cached psi columns are eigen-ordered; their eigenvalues were
        // consumed already, so recompute occupations from stored spectrum is
        // not directly possible per-domain. Use a conservative fallback:
        // fully occupy the lowest ⌈core_electrons/2⌉ bands at the chemical
        // potential's zero-temperature limit.
        let n_occ = ((setup.core_electrons / 2.0).ceil() as usize).min(psi.cols());
        let mut occ = vec![0.0; psi.cols()];
        for o in occ.iter_mut().take(n_occ) {
            *o = 2.0;
        }
        let _ = mu;
        Some(occ)
    }
}

/// Assembles the global density `ρ(r) = Σα pα(r)·ρα(r)` on the global grid
/// through the partition of unity, then rescales to the exact electron
/// count (interpolation between the two grids costs a fraction of a percent
/// of charge, which the rescale restores).
pub fn assemble_density(
    global_grid: &UniformGrid3,
    dd: &DomainDecomposition,
    setups: &[DomainSetup],
    rho_domains: &HashMap<usize, Vec<f64>>,
    n_electrons: f64,
) -> Vec<f64> {
    let by_id: HashMap<usize, &DomainSetup> = setups.iter().map(|s| (s.domain.id, s)).collect();
    let (nx, ny, nz) = global_grid.dims();
    let mut rho_out: Vec<f64> = (0..nx * ny * nz)
        .into_par_iter()
        .map(|flat| {
            let (ix, iy, iz) = global_grid.coords(flat);
            let r = global_grid.position(ix, iy, iz);
            let mut acc = 0.0;
            for (id, p) in dd.support_at(r) {
                if let (Some(setup), Some(rho_a)) = (by_id.get(&id), rho_domains.get(&id)) {
                    if let Some(local) = setup.domain.to_local(r) {
                        acc += p * setup.grid.interpolate(rho_a, local);
                    }
                }
            }
            acc.max(0.0)
        })
        .collect();
    let total = global_grid.integrate(&rho_out);
    if total > 0.0 {
        let s = n_electrons / total;
        for r in &mut rho_out {
            *r *= s;
        }
    }
    rho_out
}

impl ForceField for LdcSolver {
    fn try_compute(&mut self, system: &AtomicSystem) -> Result<ForceResult> {
        let state = self.solve(system)?;
        Ok(ForceResult {
            energy: state.energy,
            forces: state.forces,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqmd_util::constants::Element;

    fn h2(cell: f64) -> AtomicSystem {
        AtomicSystem::new(
            Vec3::splat(cell),
            vec![Element::H, Element::H],
            vec![Vec3::new(3.3, 4.0, 4.0), Vec3::new(4.7, 4.0, 4.0)],
        )
    }

    fn base_cfg() -> LdcConfig {
        LdcConfig {
            nd: (1, 1, 1),
            buffer: 0.0,
            mode: BoundaryMode::Periodic,
            hartree: HartreeSolver::Fft,
            tol_density: 1e-5,
            ..Default::default()
        }
    }

    #[test]
    fn weighted_mu_reduces_to_unweighted() {
        let eps = [-0.5, -0.2, 0.1, 0.4];
        let levels: Vec<(f64, f64)> = eps.iter().map(|&e| (e, 1.0)).collect();
        let mu = weighted_mu(&levels, 4.0, 0.01);
        let occ = mqmd_dft::density::fermi_occupations(&eps, 4.0, 0.01);
        assert!((mu - occ.mu).abs() < 1e-9);
    }

    #[test]
    fn weighted_mu_respects_weights() {
        // Halving all weights with half the electrons gives the same μ.
        let levels: Vec<(f64, f64)> = vec![(-0.5, 0.5), (-0.2, 0.5), (0.1, 0.5)];
        let full: Vec<(f64, f64)> = levels.iter().map(|&(e, _)| (e, 1.0)).collect();
        let mu_half = weighted_mu(&levels, 1.5, 0.02);
        let mu_full = weighted_mu(&full, 3.0, 0.02);
        assert!((mu_half - mu_full).abs() < 1e-9);
    }

    #[test]
    fn single_domain_ldc_matches_conventional_dft() {
        // §5.5 verification, degenerate limit: one domain, no buffer, FFT
        // Hartree — LDC must reproduce the conventional solver closely.
        let sys = h2(8.0);
        let mut ldc = LdcSolver::new(base_cfg());
        let state = ldc.solve(&sys).expect("LDC SCF converges");

        let mut conv = mqmd_dft::DftSolver::new(mqmd_dft::DftConfig {
            grid_spacing: 0.9,
            ecut: 3.0,
            scf: mqmd_dft::scf::ScfConfig {
                tol_density: 1e-5,
                ..Default::default()
            },
        });
        let ref_state = conv.solve(&sys).unwrap();
        assert!(
            (state.energy - ref_state.energy).abs() < 2e-3,
            "LDC {} vs conventional {}",
            state.energy,
            ref_state.energy
        );
        assert!((state.mu - ref_state.mu).abs() < 5e-3);
        // Densities agree pointwise.
        let scale = ref_state.density.iter().cloned().fold(0.0, f64::max);
        for (a, b) in state.density.iter().zip(&ref_state.density) {
            assert!((a - b).abs() < 0.05 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn density_integrates_to_electron_count() {
        let sys = h2(8.0);
        let mut ldc = LdcSolver::new(base_cfg());
        let state = ldc.solve(&sys).unwrap();
        let grid = grid_for_cell(sys.cell, ldc.config.global_spacing);
        assert!((grid.integrate(&state.density) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_domain_split_stays_close_to_reference() {
        // Split the cell across the H–H bond with a healthy buffer: the DC
        // approximation error must be small (§5.5's quantitative check).
        let sys = h2(8.0);
        let mut single = LdcSolver::new(base_cfg());
        let e_ref = single.solve(&sys).unwrap().energy;

        let mut split = LdcSolver::new(LdcConfig {
            nd: (2, 1, 1),
            buffer: 2.0,
            mode: BoundaryMode::ldc_default(),
            ..base_cfg()
        });
        let state = split.solve(&sys).unwrap();
        assert_eq!(state.n_domains, 2);
        let per_atom = (state.energy - e_ref).abs() / 2.0;
        assert!(
            per_atom < 1.5e-2,
            "DC error {per_atom} Ha/atom (E {} vs {})",
            state.energy,
            e_ref
        );
    }

    #[test]
    fn multigrid_and_fft_hartree_agree() {
        let sys = h2(8.0);
        let mut a = LdcSolver::new(base_cfg());
        let mut b = LdcSolver::new(LdcConfig {
            hartree: HartreeSolver::Multigrid,
            ..base_cfg()
        });
        let ea = a.solve(&sys).unwrap().energy;
        let eb = b.solve(&sys).unwrap().energy;
        // 7-point multigrid vs spectral FFT differ by O(h²) discretisation.
        assert!((ea - eb).abs() < 2e-2, "FFT {ea} vs MG {eb}");
    }

    #[test]
    fn warm_start_reduces_scf_iterations() {
        let sys = h2(8.0);
        let mut ldc = LdcSolver::new(base_cfg());
        let s1 = ldc.solve(&sys).unwrap();
        let s2 = ldc.solve(&sys).unwrap();
        assert!(s2.scf_iterations <= s1.scf_iterations);
    }
}
