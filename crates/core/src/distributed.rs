//! Rank-distributed LDC-DFT over the transport-agnostic [`Comm`] trait.
//!
//! [`solve_distributed`] replays the [`crate::global::LdcSolver`] SCF loop
//! with **domain ownership striped across ranks** (`setup index % size`) and
//! the three global couplings expressed as collectives:
//!
//! * the weighted spectrum for the global μ search travels by
//!   `allgather_concat` and is reassembled **in domain order** on every
//!   rank, so the Newton–Raphson μ iteration sums the same levels in the
//!   same order everywhere — μ is bitwise-replicated;
//! * the scalar energy partials (band, entropy, boundary double counting)
//!   and the pre-clamp partial density field are combined by
//!   `allreduce_sum`; clamping (`max(0)`) and the ∫ρ = N rescale happen
//!   *after* the reduction, replicated, so every rank holds the same ρ;
//! * the BSD buffer exchange runs as a real `halo_exchange` of boundary
//!   strips of the converged density — since ρ is replicated, each strip
//!   received must equal the strip the rank itself holds, which turns the
//!   exchange into an end-to-end transport-integrity probe.
//!
//! Everything else (Hartree + XC on the global grid, Ewald, mixing,
//! convergence control) is replicated computation on identical inputs, so
//! all ranks walk the same SCF trajectory. Because the [`Comm`] collectives
//! broadcast rank 0's fold result, the output is **bitwise identical across
//! ranks and across transports** (in-process threads vs real rank
//! processes) — the property the digital-twin validation and the 4-rank
//! bitwise gate in `crates/bench` pin.
//!
//! Forces are intentionally out of scope here: the distributed runtime
//! demonstrates the communication pattern of the electronic-structure
//! kernel; MD stepping stays on the shared-memory path.

use crate::domain_solver::{solve_domain_with, DomainBands, DomainSetup};
use crate::global::{weighted_mu, BoundaryMode, HartreeSolver, LdcBreakdown, LdcConfig};
use mqmd_dft::density::fermi;
use mqmd_dft::eigensolver::EigWorkspace;
use mqmd_dft::ewald::ewald;
use mqmd_dft::hamiltonian::ionic_local_potential;
use mqmd_dft::scf::initial_density;
use mqmd_dft::solver::{atoms_of, grid_for_cell};
use mqmd_dft::xc;
use mqmd_grid::{DomainDecomposition, UniformGrid3};
use mqmd_linalg::CMatrix;
use mqmd_md::AtomicSystem;
use mqmd_multigrid::{FftPoisson, PoissonMultigrid};
use mqmd_parallel::comm::{Comm, CommError, CommResult};
use mqmd_util::workspace::Workspace;
use mqmd_util::{faults, MqmdError, Result, Vec3};
use std::collections::{BTreeMap, HashMap};

/// Converged state of a distributed LDC-DFT solve. All fields are
/// bitwise-identical on every rank.
#[derive(Clone, Debug)]
pub struct DistributedState {
    /// Total free energy (Hartree).
    pub energy: f64,
    /// Chemical potential μ.
    pub mu: f64,
    /// Global density on the global grid (replicated).
    pub density: Vec<f64>,
    /// SCF iterations used.
    pub scf_iterations: usize,
    /// Total non-empty domains across all ranks.
    pub n_domains: usize,
    /// Domains owned by this rank.
    pub owned_domains: usize,
    /// Final density residual.
    pub density_residual: f64,
    /// Concatenated (eigenvalue, core-weight) spectrum, domain order.
    pub spectrum: Vec<(f64, f64)>,
    /// Energy components.
    pub breakdown: LdcBreakdown,
    /// Points per boundary strip verified by the halo integrity probe.
    pub halo_probe_len: usize,
}

/// Number of grid points per boundary strip in the halo integrity probe.
const HALO_PROBE_LEN: usize = 64;

/// Safety cap on SCF recovery fences per solve — a runaway-restart
/// backstop far above any real retry budget.
const MAX_RECOVERY_ROUNDS: usize = 32;

/// Solves the electronic structure of `system` with LDC-DFT, domain work
/// striped over the ranks of `comm`. Every rank must call this with the
/// same `system` and `cfg`; the result is replicated.
///
/// **Rank rebirth.** On transports with a recovery supervisor, a peer
/// death mid-solve surfaces at the next collective as a typed
/// [`CommError::PeerRestarted`] / [`CommError::PeerQuarantined`]. This
/// solver treats every collective call site as an SCF recovery
/// barrier: it fences the communicator forward
/// ([`Comm::recovery_fence`]), re-derives its `idx % size` domain
/// strip from the (possibly shrunk) `rank()`/`size()`, rehydrates from
/// the replicated initial state, and replays the SCF from iteration 1.
/// Because the whole trajectory is a deterministic function of
/// `(rank, size, system, cfg)`, the healed solve is bitwise-identical
/// to a fault-free run at the same communicator shape.
pub fn solve_distributed(
    system: &AtomicSystem,
    cfg: &LdcConfig,
    comm: &dyn Comm,
) -> Result<DistributedState> {
    let cfg = *cfg;
    let dd = DomainDecomposition::new(system.cell, cfg.nd, cfg.buffer);
    let global_grid = grid_for_cell(system.cell, cfg.global_spacing);
    let n_electrons = system.valence_electrons() as f64;
    let atoms_global = atoms_of(system);
    let v_ion_global = ionic_local_potential(&global_grid, &atoms_global);

    // Geometry phase, replicated: every rank builds every setup so the
    // partition-of-unity weights and grids agree bitwise; only the
    // *solves* are striped. (Setups are cheap next to Davidson.)
    let setups: Vec<DomainSetup> = dd
        .domains()
        .iter()
        .filter_map(|d| {
            DomainSetup::build(
                d,
                &dd,
                system,
                cfg.domain_spacing,
                cfg.ecut,
                cfg.extra_bands,
                &global_grid,
                &v_ion_global,
            )
        })
        .collect();
    if setups.is_empty() {
        return Err(MqmdError::Invalid("no atoms in any domain".into()));
    }

    let mg = PoissonMultigrid::with_defaults(global_grid.clone());
    let mut mg_hier = match cfg.hartree {
        HartreeSolver::Multigrid => Some(mg.plan()),
        HartreeSolver::Fft => None,
    };
    let fft_poisson = FftPoisson::new(global_grid.clone());
    let gws = Workspace::new();

    let ion_positions: Vec<Vec3> = atoms_global.iter().map(|(_, r)| *r).collect();
    let ion_charges: Vec<f64> = atoms_global.iter().map(|(p, _)| p.z_val).collect();
    let ew = ewald(
        global_grid.lengths_vec(),
        &ion_positions,
        &ion_charges,
        None,
    );

    let rho0 = initial_density(&global_grid, &atoms_global, n_electrons);

    let n_g = global_grid.len();
    let mut v_h = vec![0.0; n_g];
    let mut v_xc = vec![0.0; n_g];
    let mut v_hxc = vec![0.0; n_g];
    let mut v_h_out = vec![0.0; n_g];

    // The SCF recovery barrier: each pass re-derives this rank's
    // domain strip from the current communicator shape and replays the
    // whole trajectory from the replicated initial density. A
    // PeerRestarted/PeerQuarantined at any collective fences and jumps
    // back here; everything else propagates typed.
    let mut recovery_rounds = 0usize;
    'solve: loop {
        let (rank, size) = (comm.rank(), comm.size());
        let owned: Vec<usize> = (0..setups.len()).filter(|i| i % size == rank).collect();

        macro_rules! fence {
            ($call:expr) => {
                match $call {
                    Ok(v) => v,
                    Err(
                        e @ (CommError::PeerRestarted { .. } | CommError::PeerQuarantined { .. }),
                    ) => {
                        comm.recovery_fence().map_err(MqmdError::from)?;
                        recovery_rounds += 1;
                        if recovery_rounds > MAX_RECOVERY_ROUNDS {
                            return Err(MqmdError::Io(format!(
                                "SCF recovery rounds exhausted after {recovery_rounds}: {e}"
                            )));
                        }
                        faults::record_recovery(
                            "scf_epoch_fence",
                            faults::Site::Rank(rank as u64).describe(),
                            1,
                            0.0,
                        );
                        continue 'solve;
                    }
                    Err(e) => return Err(MqmdError::from(e)),
                }
            };
        }

        let mut rho = rho0.clone();
        // Previous-iteration densities of *owned* domains (for the LDC v_bc).
        let mut rho_domains: HashMap<usize, Vec<f64>> = HashMap::new();
        let mut psi_cache: HashMap<usize, CMatrix> = HashMap::new();
        let mut eig_cache: HashMap<usize, EigWorkspace> = HashMap::new();

        #[allow(clippy::type_complexity)]
        let mut outcome: Option<(
            f64,
            f64,
            Vec<f64>,
            f64,
            Vec<(f64, f64)>,
            usize,
            LdcBreakdown,
        )> = None;
        let mut alpha = cfg.mix_alpha;
        let mut prev_residual = f64::INFINITY;
        for iter in 1..=cfg.max_scf {
            let _span = mqmd_util::trace::span("scf_iter");
            if let Some(reason) = mqmd_util::cancel::poll_abort() {
                return Err(MqmdError::Cancelled {
                    what: format!("distributed LDC SCF iteration {iter}"),
                    reason,
                });
            }
            match (cfg.hartree, mg_hier.as_mut()) {
                (HartreeSolver::Multigrid, Some(hier)) => {
                    mg.hartree_with(&rho, &mut v_h, hier)?;
                }
                _ => fft_poisson.hartree_into(&rho, &mut v_h, &gws),
            }
            xc::vxc_field(&rho, &mut v_xc);
            for (o, (a, b)) in v_hxc.iter_mut().zip(v_h.iter().zip(&v_xc)) {
                *o = a + b;
            }

            // Conquer: solve only the domains this rank owns.
            let mut solved: Vec<(usize, DomainBands)> = Vec::with_capacity(owned.len());
            for &idx in &owned {
                let setup = &setups[idx];
                let bands = solve_one_domain(
                    setup,
                    &cfg,
                    &global_grid,
                    &v_hxc,
                    &rho,
                    &rho_domains,
                    &mut psi_cache,
                    &mut eig_cache,
                )?;
                solved.push((idx, bands));
            }

            // Global chemical potential: gather every rank's (ε, w) levels and
            // reassemble them in domain order so the μ bisection sums levels in
            // the serial solver's order on every rank.
            let local_spectra: Vec<(usize, Vec<(f64, f64)>)> = solved
                .iter()
                .map(|(idx, bands)| {
                    let levels = bands
                        .eigenvalues
                        .iter()
                        .zip(&bands.weights)
                        .map(|(&e, &w)| (e, w))
                        .collect();
                    (*idx, levels)
                })
                .collect();
            let spectrum = fence!(exchange_spectra(comm, &local_spectra));
            let mu = weighted_mu(&spectrum, n_electrons, cfg.kt);

            // Occupations + energy partials over owned domains.
            let mut band_energy = 0.0;
            let mut entropy = 0.0;
            let mut e_bc_dc = 0.0;
            for (idx, bands) in solved {
                let setup = &setups[idx];
                let mut rho_a = vec![0.0; setup.grid.len()];
                for (n, dens) in bands.band_densities.iter().enumerate() {
                    let f = fermi(bands.eigenvalues[n], mu, cfg.kt);
                    if f > 1e-14 {
                        for (r, d) in rho_a.iter_mut().zip(dens) {
                            *r += f * d;
                        }
                    }
                    let w = bands.weights[n];
                    band_energy += f * bands.h_weights[n];
                    let x: f64 = f / 2.0;
                    if x > 1e-12 && x < 1.0 - 1e-12 {
                        entropy += 2.0 * cfg.kt * w * (x * x.ln() + (1.0 - x) * (1.0 - x).ln());
                    }
                }
                if let (BoundaryMode::DensityAdaptive { xi }, Some(rho_prev)) =
                    (cfg.mode, rho_domains.get(&setup.domain.id))
                {
                    let rho_global_local = setup.sample_global_field(&global_grid, &rho);
                    let dv = setup.grid.dv();
                    e_bc_dc += setup
                        .p_alpha
                        .iter()
                        .zip(&rho_a)
                        .zip(rho_prev.iter().zip(&rho_global_local))
                        .map(|((p, ra), (prev, glob))| p * ra * (-(1.0 - p) * (prev - glob) / xi))
                        .sum::<f64>()
                        * dv;
                }
                psi_cache.insert(setup.domain.id, bands.psi);
                rho_domains.insert(setup.domain.id, rho_a);
            }
            let sums = fence!(comm.allreduce_sum(vec![band_energy, entropy, e_bc_dc]));
            let (band_energy, entropy, e_bc_dc) = (sums[0], sums[1], sums[2]);

            // Recombine: each rank contributes Σ_{α owned} pα·ρα on the global
            // grid; the cross-rank sum happens in the allreduce, and only then
            // is the field clamped and rescaled to ∫ρ = N — both replicated, so
            // the nonlinearity sees the same summed field everywhere.
            let _gd_span = mqmd_util::trace::span("global_density");
            let partial = partial_density_field(&global_grid, &dd, &setups, &owned, &rho_domains);
            let summed = fence!(comm.allreduce_sum(partial));
            drop(_gd_span);
            let mut rho_out: Vec<f64> = summed.into_iter().map(|x| x.max(0.0)).collect();
            let total_charge = global_grid.integrate(&rho_out);
            if total_charge > 0.0 {
                let s = n_electrons / total_charge;
                for r in &mut rho_out {
                    *r *= s;
                }
            }

            let residual: f64 = rho
                .iter()
                .zip(&rho_out)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                * global_grid.dv()
                / n_electrons;

            let dv = global_grid.dv();
            let hartree_dc: f64 = rho_out.iter().zip(&v_h).map(|(r, v)| r * v).sum::<f64>() * dv;
            let vxc_rho: f64 = rho_out.iter().zip(&v_xc).map(|(r, v)| r * v).sum::<f64>() * dv;
            match (cfg.hartree, mg_hier.as_mut()) {
                (HartreeSolver::Multigrid, Some(hier)) => {
                    mg.hartree_with(&rho_out, &mut v_h_out, hier)?;
                }
                _ => fft_poisson.hartree_into(&rho_out, &mut v_h_out, &gws),
            }
            let e_h = 0.5
                * rho_out
                    .iter()
                    .zip(&v_h_out)
                    .map(|(r, v)| r * v)
                    .sum::<f64>()
                * dv;
            let e_xc = xc::exc_energy(&rho_out, global_grid.dv());
            let total =
                band_energy - hartree_dc - vxc_rho - e_bc_dc + e_h + e_xc + ew.energy + entropy;
            let breakdown = LdcBreakdown {
                band: band_energy,
                hartree_dc,
                vxc_rho,
                bc_dc: e_bc_dc,
                e_h,
                e_xc,
                ewald: ew.energy,
                entropy,
            };

            mqmd_util::events::emit(mqmd_util::events::Event::ScfIteration {
                iter: iter as u32,
                residual,
                e_total: total,
                mix: alpha,
            });

            let converged = residual < cfg.tol_density;
            outcome = Some((
                total,
                mu,
                rho_out.clone(),
                residual,
                spectrum,
                iter,
                breakdown,
            ));
            if converged {
                break;
            }
            if residual > prev_residual {
                alpha = (alpha * 0.6).max(0.05);
            } else {
                alpha = (alpha * 1.05).min(cfg.mix_alpha);
            }
            prev_residual = residual;
            for (r_in, r_out) in rho.iter_mut().zip(&rho_out) {
                *r_in = (1.0 - alpha) * *r_in + alpha * r_out;
            }
        }

        let (energy, mu, density, residual, spectrum, iters, breakdown) =
            outcome.expect("at least one SCF iteration ran");
        if residual >= cfg.tol_density {
            return Err(MqmdError::Convergence {
                what: "distributed LDC-DFT SCF".into(),
                iterations: cfg.max_scf,
                residual,
            });
        }

        // BSD buffer exchange as integrity probe: ρ is replicated, so the
        // strip a neighbour sends must equal the strip this rank already
        // holds. Any mismatch means the transport corrupted or misrouted a
        // frame.
        let probe_len = HALO_PROBE_LEN.min(density.len());
        let left = &density[..probe_len];
        let right = &density[density.len() - probe_len..];
        let (from_left, from_right) = fence!(comm.halo_exchange(left, right));
        if from_left != right || from_right != left {
            return Err(MqmdError::Io(format!(
                "halo integrity probe failed on rank {rank}: boundary strips \
                 received over the wire differ from the replicated density"
            )));
        }

        return Ok(DistributedState {
            energy,
            mu,
            density,
            scf_iterations: iters,
            n_domains: setups.len(),
            owned_domains: owned.len(),
            density_residual: residual,
            spectrum,
            breakdown,
            halo_probe_len: probe_len,
        });
    }
}

/// One owned-domain Kohn–Sham solve with the serial solver's warm start and
/// scratch-retry rung (a failed Davidson re-runs from a fresh subspace, and
/// the retry is booked on the fault ledger like a rank requeue).
#[allow(clippy::too_many_arguments)]
fn solve_one_domain(
    setup: &DomainSetup,
    cfg: &LdcConfig,
    global_grid: &UniformGrid3,
    v_hxc: &[f64],
    rho: &[f64],
    rho_domains: &HashMap<usize, Vec<f64>>,
    psi_cache: &mut HashMap<usize, CMatrix>,
    eig_cache: &mut HashMap<usize, EigWorkspace>,
) -> Result<DomainBands> {
    let v_hxc_local = setup.sample_global_field(global_grid, v_hxc);
    let v_bc = match (cfg.mode, rho_domains.get(&setup.domain.id)) {
        (BoundaryMode::DensityAdaptive { xi }, Some(rho_prev)) => {
            let rho_global_local = setup.sample_global_field(global_grid, rho);
            rho_prev
                .iter()
                .zip(&rho_global_local)
                .zip(&setup.p_alpha)
                .map(|((a, b), p)| -(1.0 - p) * (a - b) / xi)
                .collect()
        }
        _ => vec![0.0; setup.grid.len()],
    };
    let psi0 = psi_cache.remove(&setup.domain.id);
    let mut ew = eig_cache.remove(&setup.domain.id).unwrap_or_default();
    let first = solve_domain_with(
        setup,
        &v_hxc_local,
        &v_bc,
        psi0,
        cfg.davidson_iters,
        cfg.davidson_tol,
        &mut ew,
    );
    let bands = match first {
        Ok(b) => Ok(b),
        Err(first_err) => {
            let site = faults::Site::Domain(setup.domain.id as u64).describe();
            let retry_sw = mqmd_util::timer::Stopwatch::start();
            let mut ew_retry = EigWorkspace::default();
            match solve_domain_with(
                setup,
                &v_hxc_local,
                &v_bc,
                None,
                cfg.davidson_iters,
                cfg.davidson_tol,
                &mut ew_retry,
            ) {
                Ok(b) => {
                    faults::record_recovery("domain_retry_scratch", site, 2, retry_sw.seconds());
                    ew = ew_retry;
                    Ok(b)
                }
                Err(_) => {
                    faults::record_abort("domain_abort", site, 2);
                    Err(first_err)
                }
            }
        }
    };
    eig_cache.insert(setup.domain.id, ew);
    bands
}

/// This rank's pre-clamp contribution to the global density: for every
/// global grid point, the partition-of-unity sum restricted to owned
/// domains (exactly the per-point terms of
/// [`crate::global::assemble_density`], before its `max(0)`).
fn partial_density_field(
    global_grid: &UniformGrid3,
    dd: &DomainDecomposition,
    setups: &[DomainSetup],
    owned: &[usize],
    rho_domains: &HashMap<usize, Vec<f64>>,
) -> Vec<f64> {
    let by_id: HashMap<usize, &DomainSetup> = owned
        .iter()
        .map(|&i| (setups[i].domain.id, &setups[i]))
        .collect();
    let (nx, ny, nz) = global_grid.dims();
    (0..nx * ny * nz)
        .map(|flat| {
            let (ix, iy, iz) = global_grid.coords(flat);
            let r = global_grid.position(ix, iy, iz);
            let mut acc = 0.0;
            for (id, p) in dd.support_at(r) {
                if let (Some(setup), Some(rho_a)) = (by_id.get(&id), rho_domains.get(&id)) {
                    if let Some(local) = setup.domain.to_local(r) {
                        acc += p * setup.grid.interpolate(rho_a, local);
                    }
                }
            }
            acc
        })
        .collect()
}

/// Gathers every rank's per-domain (ε, w) levels and reassembles the global
/// spectrum in ascending domain order — the serial solver's level order.
///
/// `allgather_concat` requires equal-length contributions, so each rank
/// first publishes its stream length (one f64), pads its stream to the
/// maximum with NaN, and the decode loop reads only each rank's true
/// length. Values cross the wire as exact f64s, so the reassembled spectrum
/// is bitwise-replicated.
fn exchange_spectra(
    comm: &dyn Comm,
    local: &[(usize, Vec<(f64, f64)>)],
) -> CommResult<Vec<(f64, f64)>> {
    let mut stream: Vec<f64> = Vec::new();
    for (idx, levels) in local {
        stream.push(*idx as f64);
        stream.push(levels.len() as f64);
        for &(e, w) in levels {
            stream.push(e);
            stream.push(w);
        }
    }
    let lens = comm.allgather_concat(&[stream.len() as f64])?;
    let max_len = lens.iter().fold(0.0f64, |a, &b| a.max(b)) as usize;
    stream.resize(max_len, f64::NAN);
    let all = comm.allgather_concat(&stream)?;

    let mut by_idx: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
    for (r, len) in lens.iter().enumerate() {
        let mut s = &all[r * max_len..r * max_len + *len as usize];
        while !s.is_empty() {
            if s.len() < 2 {
                return Err(CommError::Transport("truncated spectrum stream".into()));
            }
            let idx = s[0] as usize;
            let n = s[1] as usize;
            if s.len() < 2 + 2 * n {
                return Err(CommError::Transport("truncated spectrum stream".into()));
            }
            let levels = (0..n).map(|k| (s[2 + 2 * k], s[3 + 2 * k])).collect();
            if by_idx.insert(idx, levels).is_some() {
                return Err(CommError::Transport(format!(
                    "domain {idx} reported by two ranks"
                )));
            }
            s = &s[2 + 2 * n..];
        }
    }
    Ok(by_idx
        .into_values()
        .flat_map(|levels| levels.into_iter())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::LdcSolver;
    use mqmd_parallel::executor::run_ranks;
    use mqmd_util::constants::Element;

    fn h2(cell: f64) -> AtomicSystem {
        AtomicSystem::new(
            Vec3::splat(cell),
            vec![Element::H, Element::H],
            vec![Vec3::new(3.3, 4.0, 4.0), Vec3::new(4.7, 4.0, 4.0)],
        )
    }

    fn split_cfg() -> LdcConfig {
        LdcConfig {
            nd: (2, 1, 1),
            buffer: 2.0,
            mode: BoundaryMode::ldc_default(),
            hartree: HartreeSolver::Fft,
            tol_density: 1e-5,
            ..Default::default()
        }
    }

    #[test]
    fn single_rank_matches_serial_solver_bitwise() {
        // p = 1 collectives are identity maps and the partial field covers
        // every domain in the serial per-point order, so the distributed
        // path must reproduce LdcSolver::solve to the last bit.
        let sys = h2(8.0);
        let cfg = split_cfg();
        let serial = LdcSolver::new(cfg).solve(&sys).expect("serial converges");
        let out = run_ranks(1, |_, comm| solve_distributed(&sys, &cfg, comm).unwrap());
        let d = &out[0];
        assert_eq!(d.energy.to_bits(), serial.energy.to_bits());
        assert_eq!(d.mu.to_bits(), serial.mu.to_bits());
        assert_eq!(
            d.density_residual.to_bits(),
            serial.density_residual.to_bits()
        );
        assert_eq!(d.scf_iterations, serial.scf_iterations);
        assert_eq!(d.n_domains, serial.n_domains);
        assert_eq!(d.spectrum, serial.spectrum);
        assert_eq!(d.density, serial.density);
    }

    #[test]
    fn two_ranks_replicate_bitwise_and_track_serial() {
        let sys = h2(8.0);
        let cfg = split_cfg();
        let serial = LdcSolver::new(cfg).solve(&sys).expect("serial converges");
        let out = run_ranks(2, |_, comm| solve_distributed(&sys, &cfg, comm).unwrap());
        // Replication: both ranks hold the identical state.
        assert_eq!(out[0].energy.to_bits(), out[1].energy.to_bits());
        assert_eq!(out[0].mu.to_bits(), out[1].mu.to_bits());
        assert_eq!(out[0].density, out[1].density);
        assert_eq!(
            out[0].owned_domains + out[1].owned_domains,
            out[0].n_domains
        );
        // Accuracy: the tree-summed field differs from the serial per-point
        // accumulation only by f64 association; SCF magnifies that a little
        // but must stay far inside physical tolerances.
        assert!(
            (out[0].energy - serial.energy).abs() < 1e-6,
            "distributed {} vs serial {}",
            out[0].energy,
            serial.energy
        );
        assert!((out[0].mu - serial.mu).abs() < 1e-6);
        assert_eq!(out[0].halo_probe_len, HALO_PROBE_LEN);
    }

    #[test]
    fn idle_ranks_participate_in_collectives() {
        // More ranks than domains: ranks 2.. own nothing but still join
        // every collective and receive the replicated answer.
        let sys = h2(8.0);
        let cfg = split_cfg();
        let out = run_ranks(3, |_, comm| solve_distributed(&sys, &cfg, comm).unwrap());
        assert_eq!(out[2].owned_domains, 0);
        assert_eq!(out[0].energy.to_bits(), out[2].energy.to_bits());
        assert_eq!(out[0].density, out[2].density);
    }
}
