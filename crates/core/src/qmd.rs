//! Quantum molecular dynamics driver.
//!
//! Velocity Verlet over first-principles forces with optional thermostat,
//! plus the accounting the paper reports: SCF iterations per step (the
//! production run averaged 129,208/21,140 ≈ 6.1) and the §2
//! time-to-solution metric **atom·iteration/s** (the paper's headline
//! 114,000 on 786,432 cores).

use crate::global::LdcSolver;
use mqmd_md::forcefield::ForceField;
use mqmd_md::integrator::VelocityVerlet;
use mqmd_md::io::Checkpoint;
use mqmd_md::thermostat::Thermostat;
use mqmd_md::AtomicSystem;
use mqmd_util::events;
use mqmd_util::timer::Stopwatch;
use mqmd_util::Result;

/// A force backend that also reports cumulative SCF iterations — both the
/// conventional O(N³) solver and the LDC solver qualify.
pub trait ScfForceField: ForceField {
    /// Total SCF iterations executed so far.
    fn scf_iterations(&self) -> usize;
}

impl ScfForceField for LdcSolver {
    fn scf_iterations(&self) -> usize {
        self.total_scf_iterations
    }
}

impl ScfForceField for mqmd_dft::DftSolver {
    fn scf_iterations(&self) -> usize {
        self.total_scf_iterations
    }
}

/// Energy-drift watchdog: in an NVE run the total energy is conserved,
/// so a growing `|E(t) − E(0)| / |E(0)|` means the time step is too
/// large, the SCF is under-converged, or the forces are wrong.
#[derive(Clone, Copy, Debug)]
pub struct DriftWatchdog {
    /// Relative drift bound; the watchdog trips when exceeded.
    pub max_rel_drift: f64,
    /// Stop integrating on the first trip instead of finishing the run.
    pub fail_fast: bool,
}

impl Default for DriftWatchdog {
    fn default() -> Self {
        Self {
            max_rel_drift: 0.02,
            fail_fast: false,
        }
    }
}

/// Outcome of a QMD run.
#[derive(Clone, Debug)]
pub struct QmdReport {
    /// MD steps taken (may be fewer than requested under a fail-fast
    /// watchdog).
    pub steps: usize,
    /// SCF iterations consumed over those steps.
    pub scf_iterations: usize,
    /// Total (potential + kinetic) energy after each step (Hartree).
    pub energies: Vec<f64>,
    /// Instantaneous temperature after each step (Kelvin).
    pub temperatures: Vec<f64>,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// The paper's §2 time-to-solution metric: atoms × SCF iterations / s.
    pub atom_iterations_per_sec: f64,
    /// Number of energy-drift watchdog trips during the run.
    pub watchdog_trips: usize,
    /// Largest relative energy drift observed.
    pub max_drift: f64,
}

impl QmdReport {
    /// Mean SCF iterations per MD step.
    pub fn scf_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.scf_iterations as f64 / self.steps as f64
        }
    }
}

/// The QMD driver: integrator + optional thermostat + watchdog + SCF
/// bookkeeping.
pub struct QmdDriver<T: Thermostat> {
    integrator: VelocityVerlet,
    thermostat: Option<T>,
    watchdog: Option<DriftWatchdog>,
}

impl<T: Thermostat> QmdDriver<T> {
    /// Creates a driver with time step `dt` (a.u.; the paper's 0.242 fs is
    /// dt ≈ 10) and an optional thermostat. No drift watchdog by default.
    pub fn new(dt: f64, thermostat: Option<T>) -> Self {
        Self {
            integrator: VelocityVerlet::new(dt),
            thermostat,
            watchdog: None,
        }
    }

    /// Arms the energy-drift watchdog.
    pub fn with_drift_watchdog(mut self, watchdog: DriftWatchdog) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Captures the full restartable state after `step` completed steps:
    /// atoms + velocities, the integrator's cached end-of-step forces,
    /// thermostat state, and the solver's opaque payload (for
    /// [`LdcSolver`], its per-domain wave functions and densities via
    /// [`LdcSolver::export_state`]). A run resumed from the result replays
    /// bitwise.
    pub fn checkpoint(
        &self,
        step: u64,
        system: &AtomicSystem,
        solver_state: Vec<u8>,
    ) -> Checkpoint {
        Checkpoint {
            step,
            system: system.clone(),
            cached_forces: self.integrator.cached_forces().cloned(),
            thermostat: self
                .thermostat
                .as_ref()
                .map(|t| t.state())
                .unwrap_or_default(),
            solver: solver_state,
        }
    }

    /// Restores integrator and thermostat state from a checkpoint and
    /// returns the atomic system plus the opaque solver payload (feed it to
    /// [`LdcSolver::import_state`]). The caller resumes with
    /// `try_run(&mut system, ...)` for the remaining steps.
    pub fn restore(&mut self, ckp: &Checkpoint) -> (AtomicSystem, Vec<u8>) {
        match &ckp.cached_forces {
            Some(f) => self.integrator.preload_forces(f.clone()),
            None => self.integrator.reset(),
        }
        if let Some(t) = &mut self.thermostat {
            t.restore(&ckp.thermostat);
        }
        (ckp.system.clone(), ckp.solver.clone())
    }

    /// Runs `steps` QMD steps. Panics if the force backend fails
    /// unrecoverably — use [`QmdDriver::try_run`] to propagate instead.
    pub fn run<F: ScfForceField>(
        &mut self,
        system: &mut AtomicSystem,
        solver: &mut F,
        steps: usize,
    ) -> QmdReport {
        self.try_run(system, solver, steps)
            .expect("QMD force backend failed; use try_run to recover")
    }

    /// Fallible form of [`QmdDriver::run`]: a solver failure that survives
    /// every recovery ladder below (SCF rescue, per-domain retries)
    /// surfaces here as a typed error with the completed prefix of the run
    /// lost — callers restart from their last checkpoint.
    pub fn try_run<F: ScfForceField>(
        &mut self,
        system: &mut AtomicSystem,
        solver: &mut F,
        steps: usize,
    ) -> Result<QmdReport> {
        let sw = Stopwatch::start();
        let scf_before = solver.scf_iterations();
        let mut energies = Vec::with_capacity(steps);
        let mut temperatures = Vec::with_capacity(steps);
        let mut e0 = None;
        let mut watchdog_trips = 0usize;
        let mut max_drift = 0.0f64;
        for step in 0..steps {
            let _span = mqmd_util::trace::span("qmd_step");
            let e_pot = self.integrator.try_step(system, solver)?;
            if let Some(t) = &mut self.thermostat {
                t.apply(system, self.integrator.dt);
                // Velocities changed: forces cache is still valid (positions
                // unchanged), so no reset needed.
            }
            let e_kin = system.kinetic_energy();
            let e_tot = e_pot + e_kin;
            let e_ref = *e0.get_or_insert(e_tot);
            let drift = (e_tot - e_ref).abs() / e_ref.abs().max(1e-300);
            max_drift = max_drift.max(drift);
            energies.push(e_tot);
            temperatures.push(system.temperature());
            events::emit(events::Event::QmdStep {
                step: step as u32,
                e_pot,
                e_kin,
                drift,
            });
            if let Some(w) = &self.watchdog {
                if drift > w.max_rel_drift {
                    watchdog_trips += 1;
                    events::emit(events::Event::WatchdogTrip {
                        watchdog: "energy_drift",
                        message: format!(
                            "relative energy drift {drift:.3e} exceeds bound at step {step}"
                        ),
                        value: drift,
                        bound: w.max_rel_drift,
                    });
                    if w.fail_fast {
                        break;
                    }
                }
            }
        }
        let wall_seconds = sw.seconds();
        let scf_iterations = solver.scf_iterations() - scf_before;
        let atom_iterations_per_sec =
            system.len() as f64 * scf_iterations as f64 / wall_seconds.max(1e-12);
        Ok(QmdReport {
            steps: energies.len(),
            scf_iterations,
            energies,
            temperatures,
            wall_seconds,
            atom_iterations_per_sec,
            watchdog_trips,
            max_drift,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{BoundaryMode, HartreeSolver, LdcConfig};
    use mqmd_md::thermostat::Berendsen;
    use mqmd_util::constants::Element;
    use mqmd_util::{Vec3, Xoshiro256pp};

    fn h2() -> AtomicSystem {
        AtomicSystem::new(
            Vec3::splat(8.0),
            vec![Element::H, Element::H],
            vec![Vec3::new(3.3, 4.0, 4.0), Vec3::new(4.7, 4.0, 4.0)],
        )
    }

    #[test]
    fn qmd_runs_and_accounts_scf() {
        let mut sys = h2();
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        sys.thermalize(300.0, &mut rng);
        let mut solver = LdcSolver::new(LdcConfig {
            nd: (1, 1, 1),
            buffer: 0.0,
            mode: BoundaryMode::Periodic,
            hartree: HartreeSolver::Fft,
            ..Default::default()
        });
        let mut driver: QmdDriver<Berendsen> = QmdDriver::new(10.0, None);
        let report = driver.run(&mut sys, &mut solver, 3);
        assert_eq!(report.steps, 3);
        assert_eq!(report.energies.len(), 3);
        assert_eq!(report.temperatures.len(), 3);
        assert!(report.scf_iterations >= 3, "at least one SCF per step");
        assert!(report.scf_per_step() >= 1.0);
        assert!(report.atom_iterations_per_sec > 0.0);
    }

    fn ldc_solver() -> LdcSolver {
        LdcSolver::new(LdcConfig {
            nd: (1, 1, 1),
            buffer: 0.0,
            mode: BoundaryMode::Periodic,
            hartree: HartreeSolver::Fft,
            ..Default::default()
        })
    }

    #[test]
    fn drift_watchdog_trips_at_large_dt() {
        let mut sys = h2();
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        sys.thermalize(300.0, &mut rng);
        let mut solver = ldc_solver();
        // dt = 120 a.u. is far beyond the stable step for H2; measured
        // drift is O(10), so a 2% bound must trip immediately.
        let mut driver: QmdDriver<Berendsen> =
            QmdDriver::new(120.0, None).with_drift_watchdog(DriftWatchdog {
                max_rel_drift: 0.02,
                fail_fast: false,
            });
        let report = driver.run(&mut sys, &mut solver, 5);
        assert!(report.watchdog_trips >= 1, "max_drift {}", report.max_drift);
        assert!(report.max_drift > 0.02);

        // Fail-fast cuts the run short at the first trip.
        let mut sys = h2();
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        sys.thermalize(300.0, &mut rng);
        let mut solver = ldc_solver();
        let mut driver: QmdDriver<Berendsen> =
            QmdDriver::new(120.0, None).with_drift_watchdog(DriftWatchdog {
                max_rel_drift: 0.02,
                fail_fast: true,
            });
        let report = driver.run(&mut sys, &mut solver, 5);
        assert!(report.steps < 5);
        assert_eq!(report.watchdog_trips, 1);
    }

    #[test]
    fn drift_watchdog_silent_at_small_dt() {
        let mut sys = h2();
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        sys.thermalize(300.0, &mut rng);
        let mut solver = ldc_solver();
        // Same 2% bound, but at the paper's dt ≈ 10 the measured drift is
        // O(1e-3): the watchdog must stay quiet.
        let mut driver: QmdDriver<Berendsen> =
            QmdDriver::new(10.0, None).with_drift_watchdog(DriftWatchdog {
                max_rel_drift: 0.02,
                fail_fast: true,
            });
        let report = driver.run(&mut sys, &mut solver, 5);
        assert_eq!(report.watchdog_trips, 0, "max_drift {}", report.max_drift);
        assert_eq!(report.steps, 5);
        assert!(report.max_drift < 0.02);
    }

    #[test]
    fn thermostatted_qmd_controls_temperature() {
        let mut sys = h2();
        let mut rng = Xoshiro256pp::seed_from_u64(37);
        sys.thermalize(900.0, &mut rng);
        let mut solver = LdcSolver::new(LdcConfig {
            nd: (1, 1, 1),
            buffer: 0.0,
            mode: BoundaryMode::Periodic,
            hartree: HartreeSolver::Fft,
            ..Default::default()
        });
        // τ = dt makes the Berendsen rescale exact: every recorded
        // temperature (sampled right after the thermostat) must be the
        // target to machine precision, whatever the DFT forces do.
        let thermo = Berendsen {
            t_target: 300.0,
            tau: 10.0,
        };
        let mut driver = QmdDriver::new(10.0, Some(thermo));
        let report = driver.run(&mut sys, &mut solver, 3);
        for (i, &t) in report.temperatures.iter().enumerate() {
            assert!((t - 300.0).abs() < 1e-6, "step {i}: T = {t}");
        }
    }
}
