//! Quantum molecular dynamics driver.
//!
//! Velocity Verlet over first-principles forces with optional thermostat,
//! plus the accounting the paper reports: SCF iterations per step (the
//! production run averaged 129,208/21,140 ≈ 6.1) and the §2
//! time-to-solution metric **atom·iteration/s** (the paper's headline
//! 114,000 on 786,432 cores).

use crate::global::LdcSolver;
use mqmd_md::forcefield::ForceField;
use mqmd_md::integrator::VelocityVerlet;
use mqmd_md::thermostat::Thermostat;
use mqmd_md::AtomicSystem;
use mqmd_util::timer::Stopwatch;

/// A force backend that also reports cumulative SCF iterations — both the
/// conventional O(N³) solver and the LDC solver qualify.
pub trait ScfForceField: ForceField {
    /// Total SCF iterations executed so far.
    fn scf_iterations(&self) -> usize;
}

impl ScfForceField for LdcSolver {
    fn scf_iterations(&self) -> usize {
        self.total_scf_iterations
    }
}

impl ScfForceField for mqmd_dft::DftSolver {
    fn scf_iterations(&self) -> usize {
        self.total_scf_iterations
    }
}

/// Outcome of a QMD run.
#[derive(Clone, Debug)]
pub struct QmdReport {
    /// MD steps taken.
    pub steps: usize,
    /// SCF iterations consumed over those steps.
    pub scf_iterations: usize,
    /// Total (potential + kinetic) energy after each step (Hartree).
    pub energies: Vec<f64>,
    /// Instantaneous temperature after each step (Kelvin).
    pub temperatures: Vec<f64>,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// The paper's §2 time-to-solution metric: atoms × SCF iterations / s.
    pub atom_iterations_per_sec: f64,
}

impl QmdReport {
    /// Mean SCF iterations per MD step.
    pub fn scf_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.scf_iterations as f64 / self.steps as f64
        }
    }
}

/// The QMD driver: integrator + optional thermostat + SCF bookkeeping.
pub struct QmdDriver<T: Thermostat> {
    integrator: VelocityVerlet,
    thermostat: Option<T>,
}

impl<T: Thermostat> QmdDriver<T> {
    /// Creates a driver with time step `dt` (a.u.; the paper's 0.242 fs is
    /// dt ≈ 10) and an optional thermostat.
    pub fn new(dt: f64, thermostat: Option<T>) -> Self {
        Self {
            integrator: VelocityVerlet::new(dt),
            thermostat,
        }
    }

    /// Runs `steps` QMD steps.
    pub fn run<F: ScfForceField>(
        &mut self,
        system: &mut AtomicSystem,
        solver: &mut F,
        steps: usize,
    ) -> QmdReport {
        let sw = Stopwatch::start();
        let scf_before = solver.scf_iterations();
        let mut energies = Vec::with_capacity(steps);
        let mut temperatures = Vec::with_capacity(steps);
        for _ in 0..steps {
            let _span = mqmd_util::trace::span("qmd_step");
            let e_pot = self.integrator.step(system, solver);
            if let Some(t) = &mut self.thermostat {
                t.apply(system, self.integrator.dt);
                // Velocities changed: forces cache is still valid (positions
                // unchanged), so no reset needed.
            }
            energies.push(e_pot + system.kinetic_energy());
            temperatures.push(system.temperature());
        }
        let wall_seconds = sw.seconds();
        let scf_iterations = solver.scf_iterations() - scf_before;
        let atom_iterations_per_sec =
            system.len() as f64 * scf_iterations as f64 / wall_seconds.max(1e-12);
        QmdReport {
            steps,
            scf_iterations,
            energies,
            temperatures,
            wall_seconds,
            atom_iterations_per_sec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{BoundaryMode, HartreeSolver, LdcConfig};
    use mqmd_md::thermostat::Berendsen;
    use mqmd_util::constants::Element;
    use mqmd_util::{Vec3, Xoshiro256pp};

    fn h2() -> AtomicSystem {
        AtomicSystem::new(
            Vec3::splat(8.0),
            vec![Element::H, Element::H],
            vec![Vec3::new(3.3, 4.0, 4.0), Vec3::new(4.7, 4.0, 4.0)],
        )
    }

    #[test]
    fn qmd_runs_and_accounts_scf() {
        let mut sys = h2();
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        sys.thermalize(300.0, &mut rng);
        let mut solver = LdcSolver::new(LdcConfig {
            nd: (1, 1, 1),
            buffer: 0.0,
            mode: BoundaryMode::Periodic,
            hartree: HartreeSolver::Fft,
            ..Default::default()
        });
        let mut driver: QmdDriver<Berendsen> = QmdDriver::new(10.0, None);
        let report = driver.run(&mut sys, &mut solver, 3);
        assert_eq!(report.steps, 3);
        assert_eq!(report.energies.len(), 3);
        assert_eq!(report.temperatures.len(), 3);
        assert!(report.scf_iterations >= 3, "at least one SCF per step");
        assert!(report.scf_per_step() >= 1.0);
        assert!(report.atom_iterations_per_sec > 0.0);
    }

    #[test]
    fn thermostatted_qmd_controls_temperature() {
        let mut sys = h2();
        let mut rng = Xoshiro256pp::seed_from_u64(37);
        sys.thermalize(900.0, &mut rng);
        let mut solver = LdcSolver::new(LdcConfig {
            nd: (1, 1, 1),
            buffer: 0.0,
            mode: BoundaryMode::Periodic,
            hartree: HartreeSolver::Fft,
            ..Default::default()
        });
        // τ = dt makes the Berendsen rescale exact: every recorded
        // temperature (sampled right after the thermostat) must be the
        // target to machine precision, whatever the DFT forces do.
        let thermo = Berendsen {
            t_target: 300.0,
            tau: 10.0,
        };
        let mut driver = QmdDriver::new(10.0, Some(thermo));
        let report = driver.run(&mut sys, &mut solver, 3);
        for (i, &t) in report.temperatures.iter().enumerate() {
            assert!((t - 300.0).abs() < 1e-6, "step {i}: T = {t}");
        }
    }
}
