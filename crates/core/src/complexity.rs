//! Complexity and error analysis of divide-and-conquer DFT (paper §3.1 and
//! §5.2).
//!
//! * Total cost for a cubic system of side `L` tiled into cores of side `l`
//!   with buffer `b`, when the per-domain solver scales as (domain size)^ν:
//!   `T(l) = (L/l)³ · (l + 2b)^{3ν}`.
//! * Minimising over `l` gives the optimal core length `l* = 2b/(ν − 1)` —
//!   `2b` in the practical ν = 2 regime, `b` in the asymptotic ν = 3 regime.
//! * The buffer needed for a density error `ε` decays exponentially
//!   (quantum nearsightedness, Eq. (1)): `b = λ·ln(Δρ_max/(ε·ρ̄))`.
//! * Equating `T(l*)` with the conventional-DFT cost `L^{3ν}` gives the
//!   crossover length above which O(N) wins — `L = 8b` for ν = 2 (§5.2).

/// The §3.1 cost model for one parameter set.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Per-domain complexity exponent ν (2 in practice, 3 asymptotically).
    pub nu: f64,
}

impl CostModel {
    /// Practical regime: the domain solve is quadratic in domain size
    /// (the paper states O(n²) "for typical domain sizes … n < 1,000").
    pub const PRACTICAL: CostModel = CostModel { nu: 2.0 };
    /// Asymptotic regime dominated by orthonormalisation, O(n³).
    pub const ASYMPTOTIC: CostModel = CostModel { nu: 3.0 };

    /// Total DC cost `T(l) = (L/l)³·(l + 2b)^{3ν}` (arbitrary units).
    pub fn total_cost(&self, big_l: f64, l: f64, b: f64) -> f64 {
        assert!(big_l > 0.0 && l > 0.0 && b >= 0.0);
        (big_l / l).powi(3) * (l + 2.0 * b).powf(3.0 * self.nu)
    }

    /// Cost of the conventional O(N^ν) solver on the whole cell: `L^{3ν}`.
    pub fn conventional_cost(&self, big_l: f64) -> f64 {
        big_l.powf(3.0 * self.nu)
    }

    /// Speedup of LDC over DC from a buffer reduction `b_dc → b_ldc` at
    /// fixed core size `l` (§5.2): `[(l+2b_dc)/(l+2b_ldc)]^{3ν}`.
    pub fn buffer_speedup(&self, l: f64, b_dc: f64, b_ldc: f64) -> f64 {
        ((l + 2.0 * b_dc) / (l + 2.0 * b_ldc)).powf(3.0 * self.nu)
    }
}

/// Optimal core length `l* = 2b/(ν − 1)` (paper §3.1).
pub fn optimal_core_length(b: f64, nu: f64) -> f64 {
    assert!(nu > 1.0, "ν must exceed 1 for a finite optimum");
    2.0 * b / (nu - 1.0)
}

/// Crossover cell size above which DC (at the optimal `l*`) beats the
/// conventional solver: solves `T(l*) = L^{3ν}` for `L`.
///
/// For ν = 2 this reduces to the paper's closed form `L = 8b`.
pub fn crossover_length(b: f64, nu: f64) -> f64 {
    let model = CostModel { nu };
    let l_star = optimal_core_length(b, nu);
    // T(l*) = L³·c with c = (l*+2b)^{3ν}/l*³ independent of L;
    // conventional = L^{3ν}; equality: L^{3ν−3} = c.
    let c = (l_star + 2.0 * b).powf(3.0 * nu) / l_star.powi(3);
    let exponent = 3.0 * nu - 3.0;
    let l = c.powf(1.0 / exponent);
    debug_assert!(
        (model.total_cost(l, l_star, b) - model.conventional_cost(l)).abs()
            < 1e-6 * model.conventional_cost(l)
    );
    l
}

/// Buffer thickness required for a relative density tolerance ε at decay
/// constant λ (Eq. (1)): `b = λ·ln(Δρ_max/(ε·ρ̄))`.
pub fn buffer_for_tolerance(lambda: f64, delta_rho_max: f64, eps: f64, rho_mean: f64) -> f64 {
    assert!(lambda > 0.0 && delta_rho_max > 0.0 && eps > 0.0 && rho_mean > 0.0);
    (lambda * (delta_rho_max / (eps * rho_mean)).ln()).max(0.0)
}

/// Number of atoms inside a cube of side `l` at number density `n_atoms/L³`.
pub fn atoms_in_cube(l: f64, density: f64) -> f64 {
    l.powi(3) * density
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_core_length_paper_values() {
        // ν = 2 → l* = 2b; ν = 3 → l* = b (§3.1).
        assert_eq!(optimal_core_length(3.0, 2.0), 6.0);
        assert_eq!(optimal_core_length(3.0, 3.0), 3.0);
    }

    #[test]
    fn cost_is_minimised_at_l_star() {
        let m = CostModel::PRACTICAL;
        let (big_l, b) = (100.0, 4.0);
        let l_star = optimal_core_length(b, m.nu);
        let at_opt = m.total_cost(big_l, l_star, b);
        for l in [0.5 * l_star, 0.8 * l_star, 1.25 * l_star, 2.0 * l_star] {
            assert!(m.total_cost(big_l, l, b) > at_opt, "l = {l}");
        }
    }

    #[test]
    fn crossover_is_8b_for_nu2() {
        for b in [1.0, 3.57, 4.73] {
            assert!((crossover_length(b, 2.0) - 8.0 * b).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_crossover_atom_count() {
        // §5.2: for CdSe with b = 3.57 a.u., L = 8b = 28.56 a.u. and the
        // corresponding atom count is ~125 (density of the 512-atom,
        // 45.664 a.u. cell).
        let b = 3.57;
        let l_cross = crossover_length(b, 2.0);
        assert!((l_cross - 28.56).abs() < 0.01);
        let density = 512.0 / 45.664f64.powi(3);
        let atoms = atoms_in_cube(l_cross, density);
        assert!((atoms - 125.0).abs() < 3.0, "crossover atoms = {atoms}");
        // §5.2: a 50% larger buffer moves the crossover to ~125·1.5³ ≈ 422.
        let atoms_strict = atoms_in_cube(crossover_length(1.5 * b, 2.0), density);
        assert!((atoms_strict / atoms - 1.5f64.powi(3)).abs() < 0.01);
    }

    #[test]
    fn paper_speedup_factors() {
        // §5.2: l = 11.416, b 4.73 → 3.57 gives speedup 2.03 (ν=2) or
        // 2.89 (ν=3); the quoted 4.72 in one spot of the paper is a typo —
        // both b values come from Fig 7's 5×10⁻³ criterion.
        let l = 11.416;
        let s2 = CostModel::PRACTICAL.buffer_speedup(l, 4.73, 3.57);
        let s3 = CostModel::ASYMPTOTIC.buffer_speedup(l, 4.73, 3.57);
        assert!((s2 - 2.03).abs() < 0.03, "ν=2 speedup {s2}");
        assert!((s3 - 2.89).abs() < 0.06, "ν=3 speedup {s3}");
    }

    #[test]
    fn buffer_for_tolerance_monotone() {
        let b1 = buffer_for_tolerance(1.0, 1.0, 1e-2, 1.0);
        let b2 = buffer_for_tolerance(1.0, 1.0, 1e-4, 1.0);
        assert!(b2 > b1, "tighter tolerance needs thicker buffer");
        assert!((b2 - b1 - (100.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn dc_wins_above_crossover_loses_below() {
        let m = CostModel::PRACTICAL;
        let b = 3.0;
        let l_star = optimal_core_length(b, m.nu);
        let cross = crossover_length(b, m.nu);
        let above = 2.0 * cross;
        let below = 0.5 * cross;
        assert!(m.total_cost(above, l_star, b) < m.conventional_cost(above));
        assert!(m.total_cost(below, l_star, b) > m.conventional_cost(below));
    }

    #[test]
    fn total_cost_linear_in_volume_at_fixed_l() {
        // O(N): doubling the cell side multiplies cost by 8 at fixed l, b.
        let m = CostModel::PRACTICAL;
        let c1 = m.total_cost(50.0, 6.0, 3.0);
        let c2 = m.total_cost(100.0, 6.0, 3.0);
        assert!((c2 / c1 - 8.0).abs() < 1e-9);
    }
}
