//! # mqmd-core — lean divide-and-conquer DFT
//!
//! The SC14 paper's primary contribution: the **LDC-DFT** algorithm that
//! cuts the prefactor of O(N) divide-and-conquer density functional theory,
//! its **globally-scalable / locally-fast (GSLF)** solver coupling, the
//! **hierarchical band-space-domain (BSD)** decomposition plan, and the
//! quantum-molecular-dynamics driver built on them.
//!
//! The algorithm (paper Figs 1–2):
//!
//! 1. the periodic cell Ω is tiled by cores Ω₀α padded with buffers Γα into
//!    overlapping domains Ωα (`mqmd-grid`);
//! 2. each domain solves its own Kohn–Sham problem with **periodic boundary
//!    conditions on the domain box** and, in LDC mode, the
//!    **density-adaptive boundary potential** `v^bc_α = (ρα − ρ)/ξ`
//!    (Eqs. 2–3) added to the Hamiltonian ([`domain_solver`]);
//! 3. a **global chemical potential** μ is found from
//!    `N = Σ_α Σ_n f(ε^α_n; μ)·w^α_n` with core weights
//!    `w^α_n = ∫ pα·|ψ^α_n|²` (Fig 2, Eq. (c)) ([`global`]);
//! 4. the global density is assembled through the partition of unity,
//!    `ρ = Σ_α pα·ρα` (Eq. (b)), its Hartree potential is solved by the
//!    **global multigrid** (`mqmd-multigrid` — the scalable half of GSLF),
//!    and the loop repeats to self-consistency.
//!
//! [`complexity`] implements the §3.1 cost model: `T(l) = (L/l)³(l+2b)^{3ν}`,
//! the optimal domain size `l* = 2b/(ν−1)`, the buffer-for-tolerance rule of
//! Eq. (1), and the O(N)↔O(N³) crossover analysis of §5.2.
//!
//! [`dcr`] implements the §7 divide-conquer-recombine extensions: global
//! density of states, frontier orbitals and range-limited inter-domain
//! networks synthesised from the domain solutions.
//!
//! [`qmd`] is the production driver: velocity Verlet + thermostat over LDC
//! forces, with the atom·iteration/s accounting used by the paper's §2
//! time-to-solution comparison.

pub mod bsd;
pub mod complexity;
pub mod dcr;
pub mod distributed;
pub mod domain_solver;
pub mod global;
pub mod qmd;

pub use complexity::{crossover_length, optimal_core_length, CostModel};
pub use global::{BoundaryMode, LdcConfig, LdcSolver, LdcState};
pub use qmd::{QmdDriver, QmdReport};
