//! Divide-conquer-**recombine** (DCR, paper §7).
//!
//! The conclusion of the paper generalises LDC-DFT into the DCR paradigm:
//! the DC phase computes *globally informed local solutions*, and a
//! recombine phase synthesises global properties from them — global
//! frontier (HOMO/LUMO) orbitals, densities of states, charge-migration
//! networks — "at length and time scales that are otherwise impossible to
//! reach". This module implements the recombine computations that need only
//! the per-domain spectra and geometry:
//!
//! * [`density_of_states`] — the global electronic DOS as the
//!   core-weight-weighted sum of Gaussian-broadened domain levels;
//! * [`frontier_orbitals`] — the global HOMO/LUMO and gap, located by
//!   domain (which nanoreactor hosts the reactive orbital — exactly the
//!   Lewis-pair analysis of §6);
//! * [`DomainNetwork`] — the range-limited inter-domain adjacency used for
//!   "higher inter-domain correlations … not captured by the tree topology"
//!   (n-tuple recombine computations, the paper's ref [79]).

use crate::global::LdcState;
use mqmd_grid::DomainDecomposition;

/// A sampled density of states.
#[derive(Clone, Debug)]
pub struct DensityOfStates {
    /// Energy grid (Hartree).
    pub energies: Vec<f64>,
    /// DOS values (states per Hartree, spin-summed).
    pub dos: Vec<f64>,
    /// Gaussian broadening used (Hartree).
    pub sigma: f64,
}

/// Computes the global DOS from the core-weighted spectrum of an LDC solve:
/// `D(ε) = Σ_αn 2·w^α_n·g_σ(ε − ε^α_n)` — the partition of unity makes the
/// domain contributions sum to the global count without double counting.
pub fn density_of_states(state: &LdcState, sigma: f64, n_points: usize) -> DensityOfStates {
    assert!(sigma > 0.0 && n_points >= 2);
    let (lo, hi) = state
        .spectrum
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(e, _)| {
            (lo.min(e), hi.max(e))
        });
    let margin = 4.0 * sigma;
    let (lo, hi) = (lo - margin, hi + margin);
    let de = (hi - lo) / (n_points - 1) as f64;
    let norm = 1.0 / (sigma * (std::f64::consts::TAU).sqrt());
    let energies: Vec<f64> = (0..n_points).map(|i| lo + i as f64 * de).collect();
    let dos: Vec<f64> = energies
        .iter()
        .map(|&e| {
            state
                .spectrum
                .iter()
                .map(|&(eps, w)| {
                    let x = (e - eps) / sigma;
                    2.0 * w * norm * (-0.5 * x * x).exp()
                })
                .sum()
        })
        .collect();
    DensityOfStates {
        energies,
        dos,
        sigma,
    }
}

impl DensityOfStates {
    /// Integrated state count `∫D(ε)dε` (trapezoid) — should equal twice
    /// the total core weight.
    pub fn integrated_states(&self) -> f64 {
        let mut acc = 0.0;
        for w in self.energies.windows(2).zip(self.dos.windows(2)) {
            let (es, ds) = w;
            acc += 0.5 * (ds[0] + ds[1]) * (es[1] - es[0]);
        }
        acc
    }
}

/// The global frontier-orbital summary of a divided system.
#[derive(Clone, Copy, Debug)]
pub struct FrontierOrbitals {
    /// Highest level with occupation ≥ 1 (per spin-degenerate pair).
    pub homo: f64,
    /// Lowest level with occupation < 1.
    pub lumo: f64,
    /// HOMO–LUMO gap (0 for metallic spectra).
    pub gap: f64,
    /// Chemical potential.
    pub mu: f64,
}

/// Locates the global frontier orbitals from an LDC solve: the recombine
/// phase of the paper's refs [82, 83] (global frontier molecular orbitals
/// from DC bases), reduced to the eigenvalue level.
pub fn frontier_orbitals(state: &LdcState, kt: f64) -> FrontierOrbitals {
    let mut homo = f64::NEG_INFINITY;
    let mut lumo = f64::INFINITY;
    for &(e, w) in &state.spectrum {
        if w < 1e-6 {
            continue; // pure buffer states carry no global weight
        }
        let f = mqmd_dft::density::fermi(e, state.mu, kt);
        if f >= 1.0 && e > homo {
            homo = e;
        }
        if f < 1.0 && e < lumo {
            lumo = e;
        }
    }
    FrontierOrbitals {
        homo,
        lumo,
        gap: (lumo - homo).max(0.0),
        mu: state.mu,
    }
}

/// Range-limited inter-domain network for recombine-phase n-tuple
/// computations: which domain pairs are close enough (core-centre distance
/// below `range`) to carry higher-order corrections.
#[derive(Clone, Debug)]
pub struct DomainNetwork {
    /// Domain-pair edges `(i, j)` with `i < j`.
    pub edges: Vec<(usize, usize)>,
    /// Number of domains.
    pub n_domains: usize,
}

impl DomainNetwork {
    /// Builds the network from the decomposition geometry.
    pub fn build(dd: &DomainDecomposition, range: f64) -> Self {
        let n = dd.len();
        let cell = dd.cell();
        let centre = |i: usize| {
            let d = &dd.domains()[i];
            (d.core_origin + d.core_len * 0.5).wrap(cell)
        };
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let dist = (centre(i) - centre(j)).min_image(cell).norm();
                if dist <= range {
                    edges.push((i, j));
                }
            }
        }
        Self {
            edges,
            n_domains: n,
        }
    }

    /// Degree (number of recombine partners) of each domain.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n_domains];
        for &(i, j) in &self.edges {
            deg[i] += 1;
            deg[j] += 1;
        }
        deg
    }

    /// Count of connected `n`-tuples (pairs only and triangles) — the
    /// recombine phase's work estimate.
    #[allow(clippy::needless_range_loop)]
    pub fn triangle_count(&self) -> usize {
        let mut adj = vec![vec![false; self.n_domains]; self.n_domains];
        for &(i, j) in &self.edges {
            adj[i][j] = true;
            adj[j][i] = true;
        }
        let mut count = 0;
        for i in 0..self.n_domains {
            for j in (i + 1)..self.n_domains {
                if !adj[i][j] {
                    continue;
                }
                for k in (j + 1)..self.n_domains {
                    if adj[i][k] && adj[j][k] {
                        count += 1;
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{BoundaryMode, HartreeSolver, LdcConfig, LdcSolver};
    use mqmd_md::AtomicSystem;
    use mqmd_util::constants::Element;
    use mqmd_util::Vec3;

    fn solved_h2() -> (LdcState, f64) {
        let sys = AtomicSystem::new(
            Vec3::splat(8.0),
            vec![Element::H, Element::H],
            vec![Vec3::new(3.3, 4.0, 4.0), Vec3::new(4.7, 4.0, 4.0)],
        );
        let cfg = LdcConfig {
            nd: (2, 1, 1),
            buffer: 2.0,
            mode: BoundaryMode::ldc_default(),
            hartree: HartreeSolver::Fft,
            tol_density: 1e-4,
            ..Default::default()
        };
        let kt = cfg.kt;
        (LdcSolver::new(cfg).solve(&sys).unwrap(), kt)
    }

    #[test]
    fn dos_integrates_to_weighted_state_count() {
        let (state, _) = solved_h2();
        let dos = density_of_states(&state, 0.02, 400);
        let expect: f64 = state.spectrum.iter().map(|&(_, w)| 2.0 * w).sum();
        let got = dos.integrated_states();
        assert!((got - expect).abs() < 0.02 * expect, "{got} vs {expect}");
    }

    #[test]
    fn dos_peaks_near_levels() {
        let (state, _) = solved_h2();
        let dos = density_of_states(&state, 0.01, 800);
        // The strongest-weight level must sit under a local DOS maximum.
        let &(e0, _) = state
            .spectrum
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let at_level = dos
            .energies
            .iter()
            .zip(&dos.dos)
            .min_by(|a, b| (a.0 - e0).abs().partial_cmp(&(b.0 - e0).abs()).unwrap())
            .map(|(_, &d)| d)
            .unwrap();
        let mean = dos.dos.iter().sum::<f64>() / dos.dos.len() as f64;
        assert!(
            at_level > mean,
            "DOS at a level ({at_level}) exceeds the mean ({mean})"
        );
    }

    #[test]
    fn frontier_orbitals_bracket_mu() {
        let (state, kt) = solved_h2();
        let f = frontier_orbitals(&state, kt);
        assert!(
            f.homo <= f.lumo + 1e-9,
            "HOMO {} vs LUMO {}",
            f.homo,
            f.lumo
        );
        assert!(f.homo <= f.mu + 10.0 * kt);
        assert!(f.lumo >= f.mu - 10.0 * kt);
        assert!(f.gap >= 0.0);
    }

    #[test]
    fn domain_network_periodic_neighbours() {
        let dd = mqmd_grid::DomainDecomposition::new(Vec3::splat(12.0), (3, 3, 3), 1.0);
        // Range slightly above one core length: the 6 face neighbours.
        let net = DomainNetwork::build(&dd, 4.5);
        let deg = net.degrees();
        for (i, &d) in deg.iter().enumerate() {
            assert_eq!(d, 6, "domain {i} has degree {d}");
        }
        // 27 domains × 6 partners / 2 = 81 edges.
        assert_eq!(net.edges.len(), 81);
    }

    #[test]
    fn network_range_controls_tuple_count() {
        // A 4-wide lattice avoids the 3-wide torus degeneracy (+2 ≡ −1)
        // that turns axis triples into 3-cycles.
        let dd = mqmd_grid::DomainDecomposition::new(Vec3::splat(16.0), (4, 4, 4), 0.5);
        let near = DomainNetwork::build(&dd, 4.5); // faces only (4.0)
        let far = DomainNetwork::build(&dd, 6.0); // + edge diagonals (5.66)
        assert_eq!(near.edges.len(), 64 * 6 / 2);
        assert!(far.edges.len() > near.edges.len());
        assert_eq!(
            near.triangle_count(),
            0,
            "face-only adjacency has no triangles"
        );
        assert!(far.triangle_count() > 0, "diagonals close triangles");
    }
}
