//! Hierarchical band-space-domain (BSD) decomposition plan (paper §3.3).
//!
//! The coarse level assigns a dedicated communicator of
//! `cores_per_domain = P / n_domains` cores to each DC domain
//! (`MPI_COMM_SPLIT` in the original). Within a domain the plane-wave solve
//! alternates between **band decomposition** (each core owns whole bands)
//! and **space decomposition** (each core owns a slab of grid points);
//! switching between the two costs an all-to-all *inside the communicator
//! only*, and orthonormalisation adds a Cholesky axis. This module captures
//! that structure as pure bookkeeping — message counts and volumes — which
//! the Blue Gene/Q machine model in `mqmd-parallel` prices into the Fig 5/6
//! scaling predictions.

use mqmd_util::{MqmdError, Result};

/// A concrete BSD decomposition for one workload.
#[derive(Clone, Copy, Debug)]
pub struct BsdPlan {
    /// Total cores P.
    pub total_cores: usize,
    /// Number of DC domains (coarse task decomposition).
    pub n_domains: usize,
    /// Cores per domain communicator.
    pub cores_per_domain: usize,
    /// Kohn–Sham bands per domain.
    pub n_bands: usize,
    /// Grid/reciprocal points per domain (the `Np ~ 10⁴` of §3.4).
    pub n_grid: usize,
}

impl BsdPlan {
    /// Builds a plan; `total_cores` must be divisible by `n_domains` (the
    /// paper always runs whole communicators per domain).
    pub fn new(
        total_cores: usize,
        n_domains: usize,
        n_bands: usize,
        n_grid: usize,
    ) -> Result<Self> {
        if total_cores == 0 || n_domains == 0 {
            return Err(MqmdError::Invalid(
                "cores and domains must be positive".into(),
            ));
        }
        if !total_cores.is_multiple_of(n_domains) {
            return Err(MqmdError::Invalid(format!(
                "{total_cores} cores not divisible into {n_domains} domain communicators"
            )));
        }
        Ok(Self {
            total_cores,
            n_domains,
            cores_per_domain: total_cores / n_domains,
            n_bands,
            n_grid,
        })
    }

    /// Bands owned per core under band decomposition (ceiling).
    pub fn bands_per_core(&self) -> usize {
        self.n_bands.div_ceil(self.cores_per_domain)
    }

    /// Grid points owned per core under space decomposition (ceiling).
    pub fn grid_per_core(&self) -> usize {
        self.n_grid.div_ceil(self.cores_per_domain)
    }

    /// Point-to-point messages of one intra-domain all-to-all (the
    /// band↔space switch): `c·(c−1)` per domain.
    pub fn alltoall_messages_per_domain(&self) -> usize {
        let c = self.cores_per_domain;
        c * (c - 1)
    }

    /// Doubles each core ships in one band↔space all-to-all: it holds
    /// `n_bands·n_grid/c` wave-function values and re-shuffles the fraction
    /// `(c−1)/c` of them.
    pub fn alltoall_volume_per_core(&self) -> f64 {
        let c = self.cores_per_domain as f64;
        if c <= 1.0 {
            return 0.0;
        }
        (self.n_bands as f64 * self.n_grid as f64 / c) * (c - 1.0) / c
    }

    /// Latency chain length of an intra-domain allreduce (scalar products of
    /// §3.3): a binomial tree of depth ⌈log₂ c⌉.
    pub fn allreduce_depth(&self) -> usize {
        (self.cores_per_domain as f64).log2().ceil() as usize
    }

    /// Depth of the global (inter-domain) reduction tree that assembles the
    /// density: ⌈log₂ n_domains⌉ — the "progressively reduced communication
    /// volume at upper tree levels" of the metascalability argument (§7).
    pub fn global_tree_depth(&self) -> usize {
        (self.n_domains as f64).log2().ceil() as usize
    }

    /// Fraction of the total wave-function data that the global density
    /// represents — the paper quotes 0.078 % for the 50.3 M-atom run; small
    /// values are what make the algorithm communication-avoiding.
    pub fn global_density_fraction(&self, global_grid_points: usize) -> f64 {
        let wf_data = self.n_domains as f64 * self.n_bands as f64 * self.n_grid as f64;
        global_grid_points as f64 / (wf_data + global_grid_points as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_divides_cores() {
        let p = BsdPlan::new(786_432, 12_288, 128, 32 * 32 * 32).unwrap();
        assert_eq!(p.cores_per_domain, 64);
        assert_eq!(p.bands_per_core(), 2);
        assert_eq!(p.grid_per_core(), 512);
    }

    #[test]
    fn indivisible_cores_rejected() {
        assert!(BsdPlan::new(100, 7, 10, 100).is_err());
        assert!(BsdPlan::new(0, 1, 10, 100).is_err());
    }

    #[test]
    fn alltoall_scales_quadratically_in_communicator() {
        let small = BsdPlan::new(64, 16, 64, 4096).unwrap(); // c = 4
        let large = BsdPlan::new(256, 16, 64, 4096).unwrap(); // c = 16
        assert_eq!(small.alltoall_messages_per_domain(), 12);
        assert_eq!(large.alltoall_messages_per_domain(), 240);
    }

    #[test]
    fn alltoall_volume_shrinks_per_core_with_more_cores() {
        let small = BsdPlan::new(64, 16, 64, 4096).unwrap();
        let large = BsdPlan::new(1024, 16, 64, 4096).unwrap();
        assert!(large.alltoall_volume_per_core() < small.alltoall_volume_per_core());
    }

    #[test]
    fn single_core_domains_need_no_communication() {
        let p = BsdPlan::new(16, 16, 32, 1000).unwrap();
        assert_eq!(p.cores_per_domain, 1);
        assert_eq!(p.alltoall_messages_per_domain(), 0);
        assert_eq!(p.alltoall_volume_per_core(), 0.0);
        assert_eq!(p.allreduce_depth(), 0);
    }

    #[test]
    fn paper_global_density_fraction_is_tiny() {
        // 50.3M-atom run: 786,432 domains-worth of wave data vs one global
        // density — the fraction must be well below 1%.
        let p = BsdPlan::new(786_432, 786_432, 128, 16_384).unwrap();
        let frac = p.global_density_fraction(50_331_648 * 8);
        assert!(frac < 0.01, "fraction {frac}");
    }

    #[test]
    fn tree_depths() {
        let p = BsdPlan::new(4096, 64, 100, 1000).unwrap();
        assert_eq!(p.global_tree_depth(), 6);
        assert_eq!(p.allreduce_depth(), 6); // c = 64
    }
}
