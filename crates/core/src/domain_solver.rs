//! The per-domain Kohn–Sham solve (the "conquer" step).
//!
//! Each DC domain is treated as its own periodic box (the artificial
//! boundary condition whose error the buffer and the LDC boundary potential
//! control): atoms inside the box are mapped to domain-local coordinates,
//! the ionic potential and Kleinman–Bylander projectors are rebuilt on the
//! domain grid, the *globally informed* parts of the potential (Hartree +
//! XC of the global density, plus the LDC `v^bc`) are sampled from the
//! global grid, and the lowest bands are found with the preconditioned
//! block-Davidson solver of `mqmd-dft`.

use mqmd_dft::eigensolver::{block_davidson_with, EigWorkspace};
use mqmd_dft::hamiltonian::{build_projectors, KsHamiltonian, Nonlocal};
use mqmd_dft::pw::PlaneWaveBasis;
use mqmd_dft::species::Pseudopotential;
use mqmd_grid::{Domain, DomainDecomposition, UniformGrid3};
use mqmd_linalg::gemm::{zgemm, zgemm_dagger_a_into};
use mqmd_linalg::CMatrix;
use mqmd_md::AtomicSystem;
use mqmd_util::{events, faults, MqmdError, Result, Vec3};

/// Geometry-dependent, SCF-independent data of one domain.
pub struct DomainSetup {
    /// The domain geometry.
    pub domain: Domain,
    /// The domain's local real-space grid.
    pub grid: UniformGrid3,
    /// Plane-wave basis on the local grid.
    pub basis: PlaneWaveBasis,
    /// Atoms inside the domain box: pseudopotential, local position, global
    /// atom index.
    pub atoms: Vec<(Pseudopotential, Vec3, usize)>,
    /// Which of those atoms lie in the core Ω₀α (owned by this domain).
    pub core_atoms: Vec<bool>,
    /// Global ionic local potential sampled onto the local grid (Eq. 3's
    /// V_ion is a global quantity; only the basis is domain-periodic).
    pub v_ion: Vec<f64>,
    /// Support function pα sampled on the local grid.
    pub p_alpha: Vec<f64>,
    /// Kleinman–Bylander projectors on the domain basis, built once per
    /// geometry and reused across every SCF iteration's Hamiltonian.
    pub nonlocal: Option<Nonlocal>,
    /// Number of bands to solve for.
    pub n_bands: usize,
    /// Valence electrons contributed by core atoms (bookkeeping).
    pub core_electrons: f64,
}

impl DomainSetup {
    /// Builds the setup for one domain, or `None` if the domain box holds no
    /// atoms.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        domain: &Domain,
        dd: &DomainDecomposition,
        system: &AtomicSystem,
        spacing: f64,
        ecut: f64,
        extra_bands: usize,
        global_grid: &UniformGrid3,
        v_ion_global: &[f64],
    ) -> Option<Self> {
        let mut atoms = Vec::new();
        let mut core_atoms = Vec::new();
        let mut electrons_in_box = 0.0;
        let mut core_electrons = 0.0;
        for (i, (&e, &r)) in system.species.iter().zip(&system.positions).enumerate() {
            if let Some(local) = domain.to_local(r) {
                let psp = Pseudopotential::for_element(e);
                let in_core = domain.core_contains(r);
                electrons_in_box += psp.z_val;
                if in_core {
                    core_electrons += psp.z_val;
                }
                atoms.push((psp, local, i));
                core_atoms.push(in_core);
            }
        }
        if atoms.is_empty() {
            return None;
        }
        let grid = domain.local_grid(spacing);
        let basis = PlaneWaveBasis::new(grid.clone(), ecut);
        // pα and the sampled global V_ion on the local grid: both evaluated
        // at the corresponding global positions.
        let (nx, ny, nz) = grid.dims();
        let mut p_alpha = Vec::with_capacity(grid.len());
        let mut v_ion = Vec::with_capacity(grid.len());
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    let g = domain.to_global(grid.position(ix, iy, iz));
                    let p = dd
                        .support_at(g)
                        .into_iter()
                        .find(|&(id, _)| id == domain.id)
                        .map(|(_, w)| w)
                        .unwrap_or(0.0);
                    p_alpha.push(p);
                    v_ion.push(global_grid.interpolate(v_ion_global, g));
                }
            }
        }
        // 30% headroom on top of the box electron count: the global μ solve
        // needs the core-weighted capacity Σ 2·w_n to exceed the electron
        // count even though the mean core weight is only
        // core-volume/box-volume.
        let n_bands = ((electrons_in_box / 2.0 * 1.3).ceil() as usize + extra_bands).max(1);
        let dft_atoms: Vec<(Pseudopotential, Vec3)> =
            atoms.iter().map(|(p, r, _)| (*p, *r)).collect();
        let nonlocal = build_projectors(&basis, &dft_atoms);
        Some(Self {
            domain: domain.clone(),
            grid,
            basis,
            atoms,
            core_atoms,
            v_ion,
            p_alpha,
            nonlocal,
            n_bands,
            core_electrons,
        })
    }

    /// Samples a field defined on the global grid onto this domain's local
    /// grid (trilinear, periodic).
    pub fn sample_global_field(&self, global_grid: &UniformGrid3, field: &[f64]) -> Vec<f64> {
        let (nx, ny, nz) = self.grid.dims();
        let mut out = Vec::with_capacity(self.grid.len());
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    let g = self.domain.to_global(self.grid.position(ix, iy, iz));
                    out.push(global_grid.interpolate(field, g));
                }
            }
        }
        out
    }

    /// The `(pseudopotential, local position)` pairs for the dft-layer APIs.
    pub fn dft_atoms(&self) -> Vec<(Pseudopotential, Vec3)> {
        self.atoms.iter().map(|(p, r, _)| (*p, *r)).collect()
    }
}

/// Result of one domain's eigenproblem.
pub struct DomainBands {
    /// Domain Kohn–Sham eigenvalues ε^α_n (ascending).
    pub eigenvalues: Vec<f64>,
    /// Per-band densities |ψ^α_n(r)|² on the local grid (each integrates to
    /// 1 over the domain box).
    pub band_densities: Vec<Vec<f64>>,
    /// Core weights w^α_n = ∫ pα·|ψ^α_n|² — the fraction of each band that
    /// counts toward the global electron number.
    pub weights: Vec<f64>,
    /// Partition-weighted Hamiltonian expectations
    /// `h^α_n = ∫ pα·Re[ψ*_n·(H·ψ_n)]` — the per-band energy contribution in
    /// Yang's divide-and-conquer energy functional. (Using `w_n·ε_n` instead
    /// would double-count buffer-region potential energy, since pα and H do
    /// not commute.)
    pub h_weights: Vec<f64>,
    /// Converged plane-wave coefficients (cached for the next SCF step).
    pub psi: CMatrix,
    /// Davidson iterations used.
    pub iterations: usize,
}

/// Solves the domain Kohn–Sham problem given the globally informed local
/// potential pieces: `v_hxc` (Hartree+XC of the *global* density, sampled on
/// the local grid) and `v_bc` (the LDC boundary potential; zeros for plain
/// DC).
pub fn solve_domain(
    setup: &DomainSetup,
    v_hxc: &[f64],
    v_bc: &[f64],
    psi0: Option<CMatrix>,
    max_iter: usize,
    tol: f64,
) -> Result<DomainBands> {
    let mut ew = EigWorkspace::new();
    solve_domain_with(setup, v_hxc, v_bc, psi0, max_iter, tol, &mut ew)
}

/// Allocation-free form of [`solve_domain`]: every scratch buffer (the
/// effective potential, Davidson block matrices, FFT fields, per-band
/// analysis buffers) comes from `ew`, so a warm per-domain workspace makes
/// steady-state SCF iterations allocation-free on the hot path.
#[allow(clippy::too_many_arguments)]
pub fn solve_domain_with(
    setup: &DomainSetup,
    v_hxc: &[f64],
    v_bc: &[f64],
    psi0: Option<CMatrix>,
    max_iter: usize,
    tol: f64,
    ew: &mut EigWorkspace,
) -> Result<DomainBands> {
    let _span = mqmd_util::trace::span("domain_solve");
    let sw = mqmd_util::timer::Stopwatch::start();
    assert_eq!(v_hxc.len(), setup.grid.len());
    assert_eq!(v_bc.len(), setup.grid.len());
    // Fault plane: one relaxed load when idle. An injected eigensolver
    // breakdown surfaces as a typed error *before* any workspace buffers
    // are taken; a NaN injection poisons the warm-start bands below so the
    // corruption flows through the numerics and must be caught by the
    // output validation at the end of this function.
    let mut poison_psi = false;
    match faults::poll(faults::Site::Domain(setup.domain.id as u64)) {
        Some(faults::FaultKind::DavidsonDiverge) => {
            return Err(MqmdError::Convergence {
                what: format!("domain {} Davidson (injected fault)", setup.domain.id),
                iterations: 0,
                residual: f64::INFINITY,
            });
        }
        Some(faults::FaultKind::DensityNan) => poison_psi = true,
        _ => {}
    }
    // Build the starting bands before borrowing workspace buffers so the
    // fallible draw cannot strand a taken buffer outside the arena.
    let mut psi = match psi0 {
        Some(p) if p.rows() == setup.basis.len() && p.cols() == setup.n_bands => p,
        _ => setup
            .basis
            .try_random_bands(setup.n_bands, 0xC0DE ^ setup.domain.id as u64)?,
    };
    if poison_psi {
        psi.data_mut()[0] = mqmd_util::Complex64::new(f64::NAN, 0.0);
    }
    let mut v_eff = ew.ws.take_f64(setup.grid.len());
    for (o, ((a, b), c)) in v_eff
        .iter_mut()
        .zip(setup.v_ion.iter().zip(v_hxc).zip(v_bc))
    {
        *o = a + b + c;
    }
    let h = KsHamiltonian::new(&setup.basis, v_eff, setup.nonlocal.as_ref());
    let np = setup.basis.len();
    let nb = setup.n_bands;
    let report = match block_davidson_with(&h, &mut psi, max_iter, tol, ew) {
        Ok(r) => r,
        Err(mqmd_util::MqmdError::Convergence {
            iterations,
            residual,
            ..
        }) => {
            // Partially converged bands still advance the SCF; extract the
            // current Ritz values — but tell the telemetry stream, since
            // the recovered report's `residual: NaN` marker is otherwise
            // invisible.
            events::emit(events::Event::WatchdogTrip {
                watchdog: "davidson_failure",
                message: format!(
                    "domain {} Davidson failed to converge; recovering Ritz values",
                    setup.domain.id
                ),
                value: residual,
                bound: tol,
            });
            let mut h_psi = CMatrix::from_vec(np, nb, ew.ws.take_c64(np * nb));
            h.apply_into(&psi, &mut h_psi, &ew.ws);
            let mut hs = CMatrix::from_vec(nb, nb, ew.ws.take_c64(nb * nb));
            zgemm_dagger_a_into(&psi, &h_psi, &mut hs, &ew.ws);
            let eig = mqmd_linalg::eigen::zheev(&hs);
            ew.ws.give_c64(hs.into_data());
            ew.ws.give_c64(h_psi.into_data());
            let (vals, v) = match eig {
                Ok(x) => x,
                Err(e) => {
                    ew.ws.give_f64(h.v_local);
                    return Err(e);
                }
            };
            let mut rot = CMatrix::from_vec(np, nb, ew.ws.take_c64(np * nb));
            zgemm(
                mqmd_util::Complex64::ONE,
                &psi,
                &v,
                mqmd_util::Complex64::ZERO,
                &mut rot,
            );
            psi.data_mut().copy_from_slice(rot.data());
            ew.ws.give_c64(rot.into_data());
            mqmd_dft::eigensolver::EigenReport {
                eigenvalues: vals,
                iterations,
                residual: f64::NAN,
            }
        }
        Err(e) => {
            ew.ws.give_f64(h.v_local);
            return Err(e);
        }
    };

    let dv = setup.grid.dv();
    let grid_len = setup.grid.len();
    let mut band_densities = Vec::with_capacity(setup.n_bands);
    let mut weights = Vec::with_capacity(setup.n_bands);
    let mut h_weights = Vec::with_capacity(setup.n_bands);
    {
        let mut band = ew.ws.borrow_c64(np);
        let mut h_band = ew.ws.borrow_c64(np);
        let mut real = ew.ws.borrow_c64(grid_len);
        let mut h_real = ew.ws.borrow_c64(grid_len);
        for n in 0..setup.n_bands {
            psi.col_into(n, &mut band);
            setup.basis.to_real_into(&band, &mut real, &ew.ws);
            h.apply_band_into(&band, &mut h_band, &ew.ws);
            setup.basis.to_real_into(&h_band, &mut h_real, &ew.ws);
            let dens: Vec<f64> = real.iter().map(|z| z.norm_sqr()).collect();
            let w: f64 = dens
                .iter()
                .zip(&setup.p_alpha)
                .map(|(d, p)| d * p)
                .sum::<f64>()
                * dv;
            let hw: f64 = real
                .iter()
                .zip(h_real.iter())
                .zip(&setup.p_alpha)
                .map(|((psi_r, h_r), p)| p * (psi_r.conj() * *h_r).re)
                .sum::<f64>()
                * dv;
            band_densities.push(dens);
            weights.push(w);
            h_weights.push(hw);
        }
    }
    ew.ws.give_f64(h.v_local);
    // Output validation: NaN anywhere in the bands poisons the weights
    // (w = Σ |ψ|²·pα), so the O(n_bands) scan below catches corrupted
    // densities too. A non-finite result must surface as a typed error the
    // per-domain retry ladder in `global.rs` can handle — never flow into
    // the global density assembly.
    let finite = report.eigenvalues.iter().all(|e| e.is_finite())
        && weights.iter().all(|w| w.is_finite())
        && h_weights.iter().all(|h| h.is_finite());
    if !finite {
        return Err(MqmdError::Convergence {
            what: format!("domain {} produced non-finite bands", setup.domain.id),
            iterations: report.iterations,
            residual: f64::NAN,
        });
    }
    events::emit(events::Event::DomainSolve {
        domain: setup.domain.id as u32,
        bands: setup.n_bands as u32,
        iterations: report.iterations as u32,
        seconds: sw.seconds(),
    });
    Ok(DomainBands {
        eigenvalues: report.eigenvalues,
        band_densities,
        weights,
        h_weights,
        psi,
        iterations: report.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqmd_util::constants::Element;

    /// Builds the global grid + V_ion pair the production path supplies.
    fn global_ionic(sys: &AtomicSystem, spacing: f64) -> (UniformGrid3, Vec<f64>) {
        let grid = mqmd_dft::solver::grid_for_cell(sys.cell, spacing);
        let v =
            mqmd_dft::hamiltonian::ionic_local_potential(&grid, &mqmd_dft::solver::atoms_of(sys));
        (grid, v)
    }

    fn h2_system(cell: f64) -> AtomicSystem {
        AtomicSystem::new(
            Vec3::splat(cell),
            vec![Element::H, Element::H],
            vec![Vec3::new(3.3, 4.0, 4.0), Vec3::new(4.7, 4.0, 4.0)],
        )
    }

    #[test]
    fn single_domain_reduces_to_conventional() {
        // One domain, zero buffer: the domain problem IS the global problem.
        let sys = h2_system(8.0);
        let dd = DomainDecomposition::new(sys.cell, (1, 1, 1), 0.0);
        let (gg, vion) = global_ionic(&sys, 0.9);
        let setup =
            DomainSetup::build(&dd.domains()[0], &dd, &sys, 0.9, 3.0, 3, &gg, &vion).unwrap();
        assert_eq!(setup.atoms.len(), 2);
        assert!((setup.core_electrons - 2.0).abs() < 1e-12);
        // pα ≡ 1 for a single domain.
        for &p in &setup.p_alpha {
            assert!((p - 1.0).abs() < 1e-12);
        }
        let zeros = vec![0.0; setup.grid.len()];
        let bands = solve_domain(&setup, &zeros, &zeros, None, 80, 1e-6).unwrap();
        // Weights = 1 (whole band is core).
        for &w in &bands.weights {
            assert!((w - 1.0).abs() < 1e-8, "weight {w}");
        }
        // With pα ≡ 1 the weighted Hamiltonian expectation IS the eigenvalue.
        for (hw, e) in bands.h_weights.iter().zip(&bands.eigenvalues) {
            assert!((hw - e).abs() < 1e-6, "h_weight {hw} vs ε {e}");
        }
        // Cross-check the lowest eigenvalue against the conventional path on
        // the same potential (bare ions, no Hxc). In the single-domain case
        // the sampled global V_ion equals the potential built directly on
        // the (identical) domain grid.
        let basis = PlaneWaveBasis::new(setup.grid.clone(), 3.0);
        let atoms = setup.dft_atoms();
        let v = mqmd_dft::hamiltonian::ionic_local_potential(&setup.grid, &atoms);
        let nl = build_projectors(&basis, &atoms);
        let h = KsHamiltonian::new(&basis, v, nl.as_ref());
        let mut psi = basis.random_bands(setup.n_bands, 1);
        let rep = mqmd_dft::eigensolver::block_davidson(&h, &mut psi, 80, 1e-6).unwrap();
        assert!(
            (bands.eigenvalues[0] - rep.eigenvalues[0]).abs() < 1e-6,
            "{} vs {}",
            bands.eigenvalues[0],
            rep.eigenvalues[0]
        );
    }

    #[test]
    fn band_densities_normalised_over_domain() {
        let sys = h2_system(8.0);
        let dd = DomainDecomposition::new(sys.cell, (1, 1, 1), 0.0);
        let (gg, vion) = global_ionic(&sys, 0.9);
        let setup =
            DomainSetup::build(&dd.domains()[0], &dd, &sys, 0.9, 3.0, 2, &gg, &vion).unwrap();
        let zeros = vec![0.0; setup.grid.len()];
        let bands = solve_domain(&setup, &zeros, &zeros, None, 60, 1e-6).unwrap();
        for dens in &bands.band_densities {
            let total: f64 = dens.iter().sum::<f64>() * setup.grid.dv();
            assert!((total - 1.0).abs() < 1e-8, "band norm {total}");
        }
    }

    #[test]
    fn two_domains_split_atoms_and_weights() {
        // Two domains along x with buffer: both see both H atoms (they sit
        // near the x-centre), but each owns one side of the cell.
        let sys = h2_system(8.0);
        let dd = DomainDecomposition::new(sys.cell, (2, 1, 1), 1.5);
        let (gg, vion) = global_ionic(&sys, 0.9);
        let setups: Vec<DomainSetup> = dd
            .domains()
            .iter()
            .filter_map(|d| DomainSetup::build(d, &dd, &sys, 0.9, 2.5, 2, &gg, &vion))
            .collect();
        assert_eq!(setups.len(), 2);
        // Atom at x=3.3 is in core of domain 0 (core x ∈ [0,4)); atom at
        // x=4.7 in core of domain 1. Both are within 1.5 of the boundary, so
        // both appear in both domain boxes.
        assert_eq!(setups[0].atoms.len(), 2);
        assert_eq!(setups[1].atoms.len(), 2);
        assert!((setups[0].core_electrons - 1.0).abs() < 1e-12);
        assert!((setups[1].core_electrons - 1.0).abs() < 1e-12);
        // pα ≤ 1 everywhere, with a nontrivial ramp.
        for s in &setups {
            let max = s.p_alpha.iter().cloned().fold(0.0, f64::max);
            let min = s.p_alpha.iter().cloned().fold(1.0, f64::min);
            assert!((max - 1.0).abs() < 1e-12);
            assert!(min < 0.6, "buffer region should have reduced support");
        }
    }

    #[test]
    fn sample_global_field_matches_interpolation() {
        let sys = h2_system(8.0);
        let dd = DomainDecomposition::new(sys.cell, (2, 1, 1), 1.0);
        let (gg, vion) = global_ionic(&sys, 0.9);
        let setup =
            DomainSetup::build(&dd.domains()[0], &dd, &sys, 0.9, 2.5, 1, &gg, &vion).unwrap();
        let global = UniformGrid3::cubic(16, 8.0);
        let field = global.sample(|r| (0.3 * r.x).sin() + 0.1 * r.y);
        let sampled = setup.sample_global_field(&global, &field);
        // Check one arbitrary local grid point by hand.
        let (ix, iy, iz) = (3, 5, 7);
        let idx = setup.grid.index(ix, iy, iz);
        let gpos = setup.domain.to_global(setup.grid.position(ix, iy, iz));
        assert!((sampled[idx] - global.interpolate(&field, gpos)).abs() < 1e-12);
    }

    #[test]
    fn empty_domain_returns_none() {
        // All atoms in one octant; far domain sees nothing with a small
        // buffer.
        let sys = AtomicSystem::new(Vec3::splat(16.0), vec![Element::H], vec![Vec3::splat(1.0)]);
        let dd = DomainDecomposition::new(sys.cell, (4, 4, 4), 0.5);
        // Domain with lattice (2,2,2) is centred at 10,10,10 — far from the
        // atom.
        let far = &dd.domains()[(2 * 4 + 2) * 4 + 2];
        let (gg, vion) = global_ionic(&sys, 1.0);
        assert!(DomainSetup::build(far, &dd, &sys, 1.0, 2.0, 2, &gg, &vion).is_none());
    }
}
