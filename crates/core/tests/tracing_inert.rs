//! The observability layer must be *inert*: enabling phase tracing may
//! count and time, but must never change a single bit of the physics.
//!
//! This runs the full LDC-DFT pipeline (domain decomposition → SCF →
//! Davidson → Hartree → forces) twice — tracing off, then tracing on — and
//! demands bitwise-identical energies and forces, while also checking the
//! traced run actually populated the span hierarchy.

use mqmd_core::global::{BoundaryMode, HartreeSolver, LdcConfig, LdcSolver};
use mqmd_md::forcefield::{ForceField, ForceResult};
use mqmd_md::AtomicSystem;
use mqmd_util::constants::Element;
use mqmd_util::{trace, Vec3};

fn h2() -> AtomicSystem {
    AtomicSystem::new(
        Vec3::splat(8.0),
        vec![Element::H, Element::H],
        vec![Vec3::new(3.3, 4.0, 4.0), Vec3::new(4.7, 4.0, 4.0)],
    )
}

fn solve_once() -> ForceResult {
    let sys = h2();
    let mut solver = LdcSolver::new(LdcConfig {
        nd: (1, 1, 1),
        buffer: 0.0,
        mode: BoundaryMode::Periodic,
        hartree: HartreeSolver::Fft,
        ..Default::default()
    });
    solver.compute(&sys)
}

#[test]
fn tracing_is_bitwise_inert_on_the_full_ldc_pipeline() {
    trace::set_enabled(false);
    let off = solve_once();

    trace::set_enabled(true);
    trace::take(); // start from an empty registry
    let on = solve_once();
    let node = trace::take();
    trace::set_enabled(false);

    assert_eq!(
        off.energy.to_bits(),
        on.energy.to_bits(),
        "energy changed under tracing: {} vs {}",
        off.energy,
        on.energy
    );
    assert_eq!(off.forces.len(), on.forces.len());
    for (i, (a, b)) in off.forces.iter().zip(&on.forces).enumerate() {
        for (ca, cb) in [(a.x, b.x), (a.y, b.y), (a.z, b.z)] {
            assert_eq!(
                ca.to_bits(),
                cb.to_bits(),
                "force on atom {i} changed under tracing"
            );
        }
    }

    // The traced run must have recorded the pipeline's phases — otherwise
    // "inert" would be vacuous.
    for name in ["scf_iter", "domain_solve", "hamiltonian", "fft", "poisson"] {
        let agg = node
            .aggregate(name)
            .unwrap_or_else(|| panic!("span {name} never opened"));
        assert!(agg.calls > 0, "span {name} never opened");
        assert!(agg.wall_secs >= 0.0);
    }
    let fft = node.aggregate("fft").expect("fft span");
    assert!(fft.flops > 0, "fft span recorded no FLOPs");
}
