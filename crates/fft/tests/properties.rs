//! Property-based tests of the FFT: round trip, Parseval, linearity, and
//! the shift theorem, for arbitrary (not just power-of-two) lengths.

use mqmd_fft::{Fft1d, Fft3d};
use mqmd_util::{Complex64, Xoshiro256pp};
use proptest::prelude::*;

fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| Complex64::new(rng.normal(), rng.normal()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn round_trip_any_length(n in 1usize..200, seed in any::<u64>()) {
        let x = random_signal(n, seed);
        let plan = Fft1d::new(n);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-8 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn parseval_any_length(n in 1usize..150, seed in any::<u64>()) {
        let x = random_signal(n, seed);
        let mut y = x.clone();
        Fft1d::new(n).forward(&mut y);
        let e_t: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_f: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((e_t - e_f).abs() < 1e-7 * (1.0 + e_t));
    }

    #[test]
    fn circular_shift_theorem(n in 2usize..100, shift in 0usize..100, seed in any::<u64>()) {
        // FFT(x shifted by s)_k = FFT(x)_k · e^{−2πi·s·k/n}
        let shift = shift % n;
        let x = random_signal(n, seed);
        let shifted: Vec<Complex64> = (0..n).map(|i| x[(i + shift) % n]).collect();
        let plan = Fft1d::new(n);
        let mut fx = x.clone();
        let mut fs = shifted;
        plan.forward(&mut fx);
        plan.forward(&mut fs);
        for k in 0..n {
            let phase = Complex64::cis(std::f64::consts::TAU * (shift * k % n) as f64 / n as f64);
            let expect = fx[k] * phase;
            prop_assert!((fs[k] - expect).abs() < 1e-7 * (1.0 + expect.abs()));
        }
    }

    #[test]
    fn fft3d_round_trip(nx in 1usize..9, ny in 1usize..9, nz in 1usize..9, seed in any::<u64>()) {
        let plan = Fft3d::new(nx, ny, nz);
        let x = random_signal(plan.len(), seed);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-8 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn dc_bin_is_the_sum(n in 1usize..120, seed in any::<u64>()) {
        let x = random_signal(n, seed);
        let mut y = x.clone();
        Fft1d::new(n).forward(&mut y);
        let sum: Complex64 = x.iter().copied().sum();
        prop_assert!((y[0] - sum).abs() < 1e-8 * (1.0 + sum.abs()));
    }
}
