//! Differential tests of the vectorized Stockham butterflies against the
//! always-compiled scalar reference.
//!
//! The vector butterflies replicate the scalar complex-multiply op order
//! per lane, so the dispatcher path must be **bitwise** identical to
//! `forward_scalar`/`inverse_scalar` for every length — power-of-two
//! Stockham lengths and Bluestein lengths alike (Bluestein recurses into
//! vectorized inner transforms). On top of the bitwise pin, the classic
//! analytic checks (round trip, Parseval) run on the SIMD path so a
//! future relaxation of the bitwise contract still has a correctness
//! floor, and the 3-D pencil transform must be bitwise reproducible
//! across rayon thread counts.

use mqmd_fft::{Fft1d, Fft3d};
use mqmd_util::{Complex64, Xoshiro256pp};
use proptest::prelude::*;

fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| Complex64::new(rng.normal(), rng.normal()))
        .collect()
}

fn bits_eq(a: &[Complex64], b: &[Complex64]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dispatcher_is_bitwise_scalar_any_length(n in 1usize..300, seed in any::<u64>()) {
        let plan = Fft1d::new(n);
        let x = random_signal(n, seed);

        let mut fwd = x.clone();
        let mut fwd_ref = x.clone();
        plan.forward(&mut fwd);
        plan.forward_scalar(&mut fwd_ref);
        prop_assert!(bits_eq(&fwd, &fwd_ref), "forward n={}", n);

        plan.inverse(&mut fwd);
        plan.inverse_scalar(&mut fwd_ref);
        prop_assert!(bits_eq(&fwd, &fwd_ref), "inverse n={}", n);
    }

    // Mixed-path round trip: SIMD forward undone by the scalar inverse
    // (and vice versa) recovers the signal — the two paths implement the
    // same transform, not merely two self-consistent ones.
    #[test]
    fn mixed_path_round_trip(n in 1usize..200, seed in any::<u64>()) {
        let plan = Fft1d::new(n);
        let x = random_signal(n, seed);

        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse_scalar(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-8 * (1.0 + a.abs()));
        }

        let mut z = x.clone();
        plan.forward_scalar(&mut z);
        plan.inverse(&mut z);
        for (a, b) in x.iter().zip(&z) {
            prop_assert!((*a - *b).abs() < 1e-8 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn simd_path_preserves_parseval(n in 1usize..200, seed in any::<u64>()) {
        let x = random_signal(n, seed);
        let mut y = x.clone();
        Fft1d::new(n).forward(&mut y);
        let e_t: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_f: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((e_t - e_f).abs() < 1e-7 * (1.0 + e_t));
    }
}

/// The 3-D transform fans pencils out over rayon; each pencil is an
/// independent 1-D transform, so the result must not depend on how many
/// workers the pool happens to have.
#[test]
fn fft3d_is_bitwise_deterministic_across_thread_counts() {
    let plan = Fft3d::new(12, 8, 10);
    let x = random_signal(plan.len(), 42);
    let reference = {
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        y
    };
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("test pool");
        let got = pool.install(|| {
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            y
        });
        assert!(
            bits_eq(&got, &reference),
            "{threads}-thread fft3d round trip diverged"
        );
    }
}
