//! Bit-for-bit determinism of the parallel pencil FFT.
//!
//! The 3-D transform parallelises over pencils, but every pencil is an
//! independent 1-D transform writing a disjoint index set — so the result
//! must be *bitwise* identical run to run and across thread counts. This
//! pins down the reproducibility the tracing/metrics pipeline assumes
//! (profiles from different hosts must differ only in timings, never in
//! numerics).

use mqmd_fft::{Fft1d, Fft3d};
use mqmd_util::workspace::Workspace;
use mqmd_util::Complex64;
use rayon::ThreadPoolBuilder;

fn random_field(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| Complex64::new(rng.normal(), rng.normal()))
        .collect()
}

/// Exact bit comparison — no tolerance.
fn assert_bits_eq(a: &[Complex64], b: &[Complex64], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: bit mismatch at {i}: {x:?} vs {y:?}"
        );
    }
}

fn forward_with_threads(
    plan: &Fft3d,
    input: &[Complex64],
    threads: Option<usize>,
) -> Vec<Complex64> {
    let mut data = input.to_vec();
    match threads {
        None => plan.forward(&mut data),
        Some(t) => ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("pool")
            .install(|| plan.forward(&mut data)),
    }
    data
}

#[test]
fn fft3d_repeated_runs_are_bitwise_identical() {
    // Power-of-two, mixed-radix, and Bluestein (prime) dimensions.
    for (nx, ny, nz) in [(16, 16, 16), (8, 4, 2), (3, 5, 7), (12, 10, 6)] {
        let plan = Fft3d::new(nx, ny, nz);
        let input = random_field(plan.len(), (nx * 100 + ny * 10 + nz) as u64);
        let first = forward_with_threads(&plan, &input, None);
        for rep in 0..5 {
            let again = forward_with_threads(&plan, &input, None);
            assert_bits_eq(&first, &again, &format!("{nx}x{ny}x{nz} rep {rep}"));
        }
    }
}

#[test]
fn fft3d_is_thread_count_invariant() {
    for (nx, ny, nz) in [(16, 16, 16), (3, 5, 7), (9, 8, 4)] {
        let plan = Fft3d::new(nx, ny, nz);
        let input = random_field(plan.len(), (nx + ny + nz) as u64);
        let serial = forward_with_threads(&plan, &input, Some(1));
        for threads in [2, 3, 8] {
            let parallel = forward_with_threads(&plan, &input, Some(threads));
            assert_bits_eq(&serial, &parallel, &format!("{nx}x{ny}x{nz} @ {threads}t"));
        }
        let default_pool = forward_with_threads(&plan, &input, None);
        assert_bits_eq(&serial, &default_pool, &format!("{nx}x{ny}x{nz} @ default"));
    }
}

#[test]
fn fft3d_inverse_is_thread_count_invariant() {
    let plan = Fft3d::new(6, 15, 4);
    let mut freq = random_field(plan.len(), 77);
    plan.forward(&mut freq);
    let one = {
        let mut d = freq.clone();
        ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool")
            .install(|| plan.inverse(&mut d));
        d
    };
    let many = {
        let mut d = freq.clone();
        ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool")
            .install(|| plan.inverse(&mut d));
        d
    };
    assert_bits_eq(&one, &many, "inverse 1t vs 4t");
}

/// Regression test for the gather-scratch reuse: warm (reused) scratch
/// must give bit-identical results to cold scratch, across thread counts.
/// Before the thread-local line existed, every pencil task allocated a
/// fresh `vec!`; reuse must not be observable in the numerics.
#[test]
fn fft3d_scratch_reuse_is_bitwise_deterministic() {
    for (nx, ny, nz) in [(16, 16, 16), (3, 5, 7), (12, 10, 6)] {
        let plan = Fft3d::new(nx, ny, nz);
        let input = random_field(plan.len(), (nx * 7 + ny * 5 + nz) as u64);
        // Cold reference on a fresh 1-thread pool (fresh worker threads =
        // fresh thread-local scratch).
        let cold = forward_with_threads(&plan, &input, Some(1));
        for threads in [1usize, 2, 4] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| {
                // Warm the scratch with unrelated data of the same and of a
                // *different* size, then transform the real input twice.
                let mut junk = random_field(plan.len(), 999);
                plan.forward(&mut junk);
                let small = Fft3d::new(4, 4, 4);
                let mut junk_small = random_field(small.len(), 998);
                small.forward(&mut junk_small);
                for rep in 0..2 {
                    let mut warm = input.to_vec();
                    plan.forward(&mut warm);
                    assert_bits_eq(
                        &cold,
                        &warm,
                        &format!("{nx}x{ny}x{nz} warm rep {rep} @ {threads}t"),
                    );
                }
            });
        }
    }
}

/// The workspace-borrowing entry points must be bitwise identical to the
/// thread-local ones, for both transform directions, and reusing one
/// workspace across many transforms must not be observable.
#[test]
fn fft3d_workspace_path_matches_owned_path_bitwise() {
    let ws = Workspace::new();
    for (nx, ny, nz) in [(16, 16, 16), (3, 5, 7), (8, 4, 2)] {
        let plan = Fft3d::new(nx, ny, nz);
        let input = random_field(plan.len(), (nx * 31 + ny * 3 + nz) as u64);
        for rep in 0..3 {
            let mut owned = input.clone();
            plan.forward(&mut owned);
            let mut pooled = input.clone();
            plan.forward_with(&mut pooled, &ws);
            assert_bits_eq(&owned, &pooled, &format!("fwd {nx}x{ny}x{nz} rep {rep}"));
            plan.inverse(&mut owned);
            plan.inverse_with(&mut pooled, &ws);
            assert_bits_eq(&owned, &pooled, &format!("inv {nx}x{ny}x{nz} rep {rep}"));
        }
    }
    let s = ws.stats().snapshot();
    assert!(s.hits > 0, "repeated transforms must reuse pooled scratch");
}

#[test]
fn fft1d_repeated_runs_are_bitwise_identical() {
    for n in [1usize, 2, 13, 64, 100, 127] {
        let plan = Fft1d::new(n);
        let input = random_field(n, n as u64);
        let mut first = input.clone();
        plan.forward(&mut first);
        for _ in 0..3 {
            let mut again = input.clone();
            plan.forward(&mut again);
            assert_bits_eq(&first, &again, &format!("1d n={n}"));
        }
    }
}
