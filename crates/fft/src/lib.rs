//! # mqmd-fft
//!
//! Fast Fourier transforms written from scratch for the plane-wave
//! electronic-structure solver — the "locally fast" half of the paper's
//! globally-scalable / locally-fast (GSLF) scheme (§3.2). The original code
//! replaced FFTW with the SIMD-friendly Spiral library on Blue Gene/Q
//! (§4.2); our stand-in is a self-sorting Stockham radix-2 kernel (no
//! bit-reversal pass, fully sequential memory access) with a Bluestein
//! fallback for arbitrary lengths, and a rayon-parallel pencil-decomposed
//! 3-D transform mirroring the butterfly network of the paper's Fig 3.
//!
//! * [`fft1d::Fft1d`] — planned 1-D complex transform;
//! * [`fft3d::Fft3d`] — planned 3-D complex transform over flattened
//!   `(nx, ny, nz)` arrays;
//! * [`freq`] — reciprocal-lattice frequency bookkeeping shared with
//!   `mqmd-dft`.

pub mod fft1d;
pub mod fft3d;
pub mod freq;

pub use fft1d::Fft1d;
pub use fft3d::Fft3d;
