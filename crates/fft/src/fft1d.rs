//! Planned 1-D complex FFT.
//!
//! Powers of two go through a self-sorting Stockham radix-2 kernel with
//! per-stage precomputed twiddle tables (no bit-reversal permutation, all
//! loads/stores sequential — the property that made Spiral attractive on
//! Blue Gene/Q's QPX units). Every other length goes through Bluestein's
//! chirp-z algorithm, which re-expresses the DFT as a circular convolution of
//! the next power-of-two size.

use mqmd_util::flops::{count_flops, fft_flops};
use mqmd_util::Complex64;

/// A planned forward/inverse complex FFT of fixed length.
pub struct Fft1d {
    n: usize,
    kind: Kind,
}

enum Kind {
    /// Radix-2 Stockham; one twiddle table per stage.
    Pow2 { stages: Vec<Vec<Complex64>> },
    /// Bluestein chirp-z: internal power-of-two FFT of length `m`.
    Bluestein {
        m: usize,
        inner: Box<Fft1d>,
        /// chirp a_k = exp(−iπk²/n)
        chirp: Vec<Complex64>,
        /// FFT of the zero-padded conjugate-chirp kernel
        kernel_hat: Vec<Complex64>,
    },
}

impl Fft1d {
    /// Plans a transform of length `n ≥ 1`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "FFT length must be at least 1");
        if n.is_power_of_two() {
            let mut stages = Vec::new();
            let mut len = n;
            while len > 1 {
                let m = len / 2;
                let theta = -std::f64::consts::TAU / len as f64;
                let tw: Vec<Complex64> = (0..m).map(|p| Complex64::cis(theta * p as f64)).collect();
                stages.push(tw);
                len = m;
            }
            Self {
                n,
                kind: Kind::Pow2 { stages },
            }
        } else {
            // Bluestein: need a circular convolution of length ≥ 2n − 1.
            let m = (2 * n - 1).next_power_of_two();
            let inner = Box::new(Fft1d::new(m));
            // Chirp with double-angle bookkeeping: πk²/n computed modulo 2π via
            // exact integer reduction of k² mod 2n to avoid precision loss.
            let chirp: Vec<Complex64> = (0..n)
                .map(|k| {
                    let kk = (k as u128 * k as u128 % (2 * n as u128)) as f64;
                    Complex64::cis(-std::f64::consts::PI * kk / n as f64)
                })
                .collect();
            let mut kernel = vec![Complex64::ZERO; m];
            for k in 0..n {
                let v = chirp[k].conj();
                kernel[k] = v;
                if k != 0 {
                    kernel[m - k] = v;
                }
            }
            inner.forward(&mut kernel);
            Self {
                n,
                kind: Kind::Bluestein {
                    m,
                    inner,
                    chirp,
                    kernel_hat: kernel,
                },
            }
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true for the degenerate length-1 transform.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward DFT: `X_k = Σ_j x_j·exp(−2πi·jk/n)`.
    ///
    /// Dispatches to the vectorized Stockham butterflies when the `simd`
    /// feature is compiled in and the CPU supports AVX2+FMA; the vector
    /// path replicates the scalar operation order per lane and is bitwise
    /// identical to [`Fft1d::forward_scalar`].
    ///
    /// # Panics
    /// Panics if `x.len() != self.len()`.
    pub fn forward(&self, x: &mut [Complex64]) {
        self.forward_impl(x, mqmd_util::simd::simd_available());
    }

    /// Scalar reference for [`Fft1d::forward`] — always compiled, used by
    /// the differential tests.
    pub fn forward_scalar(&self, x: &mut [Complex64]) {
        self.forward_impl(x, false);
    }

    fn forward_impl(&self, x: &mut [Complex64], use_simd: bool) {
        assert_eq!(x.len(), self.n, "buffer length mismatch");
        count_flops(fft_flops(self.n as u64));
        match &self.kind {
            Kind::Pow2 { stages } => {
                let mut scratch = vec![Complex64::ZERO; self.n];
                stockham(x, &mut scratch, stages, use_simd);
            }
            Kind::Bluestein {
                m,
                inner,
                chirp,
                kernel_hat,
            } => {
                let n = self.n;
                let mut a = vec![Complex64::ZERO; *m];
                for k in 0..n {
                    a[k] = x[k] * chirp[k];
                }
                inner.forward_impl(&mut a, use_simd);
                for (ai, ki) in a.iter_mut().zip(kernel_hat) {
                    *ai *= *ki;
                }
                inner.inverse_impl(&mut a, use_simd);
                for k in 0..n {
                    x[k] = a[k] * chirp[k];
                }
            }
        }
    }

    /// In-place inverse DFT (unitary up to the conventional 1/n scaling):
    /// `x_j = (1/n)·Σ_k X_k·exp(+2πi·jk/n)`.
    pub fn inverse(&self, x: &mut [Complex64]) {
        self.inverse_impl(x, mqmd_util::simd::simd_available());
    }

    /// Scalar reference for [`Fft1d::inverse`].
    pub fn inverse_scalar(&self, x: &mut [Complex64]) {
        self.inverse_impl(x, false);
    }

    fn inverse_impl(&self, x: &mut [Complex64], use_simd: bool) {
        assert_eq!(x.len(), self.n, "buffer length mismatch");
        // ifft(x) = conj(fft(conj(x)))/n — reuses the forward machinery.
        for z in x.iter_mut() {
            *z = z.conj();
        }
        self.forward_impl(x, use_simd);
        let inv_n = 1.0 / self.n as f64;
        for z in x.iter_mut() {
            *z = z.conj().scale(inv_n);
        }
    }
}

/// Self-sorting Stockham radix-2 driver. `x` holds the input and receives the
/// output; `y` is same-length scratch. `stages[t]` holds the twiddles
/// `exp(−2πi·p/len_t)` for stage `t` with `len_t = n >> t`. `use_simd`
/// selects the vectorized butterflies (a no-op request on builds without
/// the backend).
fn stockham(x: &mut [Complex64], y: &mut [Complex64], stages: &[Vec<Complex64>], use_simd: bool) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if use_simd && mqmd_util::simd::simd_available() {
        // SAFETY: `simd_available` verified AVX2+FMA.
        unsafe { avx::stockham_avx2(x, y, stages) };
        return;
    }
    let _ = use_simd;
    stockham_scalar(x, y, stages);
}

/// Scalar reference butterflies — the twin every vectorized stage is
/// differentially tested against.
#[allow(clippy::needless_range_loop)] // twiddle index doubles as output base
fn stockham_scalar(x: &mut [Complex64], y: &mut [Complex64], stages: &[Vec<Complex64>]) {
    let n = x.len();
    if n == 1 {
        return;
    }
    let mut len = n; // current sub-transform length
    let mut s = 1; // current stride
    let mut src_is_x = true;
    for tw in stages {
        let m = len / 2;
        let (src, dst): (&[Complex64], &mut [Complex64]) = if src_is_x {
            (&*x, &mut *y)
        } else {
            (&*y, &mut *x)
        };
        for p in 0..m {
            let w = tw[p];
            let base0 = s * p;
            let base1 = s * (p + m);
            let out0 = s * 2 * p;
            let out1 = s * (2 * p + 1);
            for q in 0..s {
                let a = src[q + base0];
                let b = src[q + base1];
                dst[q + out0] = a + b;
                dst[q + out1] = (a - b) * w;
            }
        }
        src_is_x = !src_is_x;
        len = m;
        s *= 2;
    }
    if !src_is_x {
        x.copy_from_slice(y);
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx {
    use super::Complex64;
    use mqmd_util::simd::F64x4;

    /// Vectorized Stockham butterflies: stages with stride `s ≥ 2` process
    /// two complex values per `f64x4` register. The twiddle multiply is
    /// built from `mul`/`addsub`, which is lane-for-lane the operation
    /// order of the scalar `Complex64` multiply — the whole transform is
    /// **bitwise identical** to [`super::stockham_scalar`]. The first
    /// stage (`s = 1`, scattered outputs) stays scalar.
    ///
    /// # Safety
    /// Requires AVX2+FMA at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::needless_range_loop)]
    pub unsafe fn stockham_avx2(
        x: &mut [Complex64],
        y: &mut [Complex64],
        stages: &[Vec<Complex64>],
    ) {
        let n = x.len();
        if n == 1 {
            return;
        }
        let mut len = n;
        let mut s = 1;
        let mut src_is_x = true;
        for tw in stages {
            let m = len / 2;
            let (src, dst): (&[Complex64], &mut [Complex64]) = if src_is_x {
                (&*x, &mut *y)
            } else {
                (&*y, &mut *x)
            };
            if s >= 2 {
                // Complex64 is #[repr(C)] {re, im}: the rows reinterpret
                // as interleaved [re, im] f64 streams.
                let sp = src.as_ptr() as *const f64;
                let dp = dst.as_mut_ptr() as *mut f64;
                for p in 0..m {
                    let w = tw[p];
                    let wv = F64x4::new(w.re, w.im, w.re, w.im);
                    let wsw = wv.swap_pairs();
                    let base0 = s * p;
                    let base1 = s * (p + m);
                    let out0 = s * 2 * p;
                    let out1 = s * (2 * p + 1);
                    // s is a power of two ≥ 2, so the q-loop has no tail.
                    let mut q = 0;
                    while q < s {
                        let a = F64x4::load(sp.add(2 * (q + base0)));
                        let b = F64x4::load(sp.add(2 * (q + base1)));
                        a.add(b).store(dp.add(2 * (q + out0)));
                        let d = a.sub(b);
                        let dsw = d.swap_pairs();
                        let dre = d.blend_odd_from(dsw); // [re, re, re, re]
                        let dim = d.blend_even_from(dsw); // [im, im, im, im]
                                                          // even lanes: re·w.re − im·w.im; odd: re·w.im + im·w.re
                        dre.mul(wv)
                            .addsub(dim.mul(wsw))
                            .store(dp.add(2 * (q + out1)));
                        q += 2;
                    }
                }
            } else {
                for p in 0..m {
                    let w = tw[p];
                    let a = src[p];
                    let b = src[p + m];
                    dst[2 * p] = a + b;
                    dst[2 * p + 1] = (a - b) * w;
                }
            }
            src_is_x = !src_is_x;
            len = m;
            s *= 2;
        }
        if !src_is_x {
            x.copy_from_slice(y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex64]) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut s = Complex64::ZERO;
                for (j, &xj) in x.iter().enumerate() {
                    s +=
                        xj * Complex64::cis(-std::f64::consts::TAU * (j * k % n) as f64 / n as f64);
                }
                s
            })
            .collect()
    }

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex64::new(rng.normal(), rng.normal()))
            .collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_dft_pow2() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let x = random_signal(n, n as u64);
            let expect = naive_dft(&x);
            let mut got = x.clone();
            Fft1d::new(n).forward(&mut got);
            assert!(max_err(&got, &expect) < 1e-9 * n as f64, "n = {n}");
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary() {
        for n in [3usize, 5, 6, 7, 12, 15, 17, 31, 45, 100] {
            let x = random_signal(n, 1000 + n as u64);
            let expect = naive_dft(&x);
            let mut got = x.clone();
            Fft1d::new(n).forward(&mut got);
            assert!(max_err(&got, &expect) < 1e-8 * n as f64, "n = {n}");
        }
    }

    #[test]
    fn round_trip_identity() {
        for n in [8usize, 10, 27, 128, 384] {
            let x = random_signal(n, 7 * n as u64);
            let plan = Fft1d::new(n);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            assert!(max_err(&x, &y) < 1e-10 * n as f64, "n = {n}");
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 64;
        let x = random_signal(n, 9);
        let mut y = x.clone();
        Fft1d::new(n).forward(&mut y);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn delta_transforms_to_constant() {
        let n = 32;
        let mut x = vec![Complex64::ZERO; n];
        x[0] = Complex64::ONE;
        Fft1d::new(n).forward(&mut x);
        for z in &x {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_has_single_peak() {
        let n = 64;
        let k0 = 5;
        let mut x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(std::f64::consts::TAU * (k0 * j) as f64 / n as f64))
            .collect();
        Fft1d::new(n).forward(&mut x);
        for (k, z) in x.iter().enumerate() {
            if k == k0 {
                assert!((z.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 48; // exercises Bluestein
        let a = random_signal(n, 21);
        let b = random_signal(n, 22);
        let plan = Fft1d::new(n);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let mut sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y.scale(2.0)).collect();
        plan.forward(&mut sum);
        let expect: Vec<Complex64> = fa
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| x + y.scale(2.0))
            .collect();
        assert!(max_err(&sum, &expect) < 1e-9);
    }

    #[test]
    fn simd_butterflies_are_bitwise_scalar() {
        // Pow2 goes through the vector butterflies directly; 48/100 route
        // through Bluestein, whose inner pow2 transforms must also match.
        for n in [2usize, 4, 16, 64, 256, 48, 100] {
            let x = random_signal(n, 33 + n as u64);
            let plan = Fft1d::new(n);
            let mut fwd = x.clone();
            let mut fwd_ref = x.clone();
            plan.forward(&mut fwd);
            plan.forward_scalar(&mut fwd_ref);
            for (u, v) in fwd.iter().zip(&fwd_ref) {
                assert_eq!(u.re.to_bits(), v.re.to_bits(), "n = {n}");
                assert_eq!(u.im.to_bits(), v.im.to_bits(), "n = {n}");
            }
            plan.inverse(&mut fwd);
            plan.inverse_scalar(&mut fwd_ref);
            for (u, v) in fwd.iter().zip(&fwd_ref) {
                assert_eq!(u.re.to_bits(), v.re.to_bits(), "n = {n}");
                assert_eq!(u.im.to_bits(), v.im.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let plan = Fft1d::new(8);
        let mut x = vec![Complex64::ZERO; 4];
        plan.forward(&mut x);
    }
}
