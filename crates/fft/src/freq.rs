//! Reciprocal-space frequency bookkeeping.
//!
//! A periodic cell of side `l` sampled on `n` grid points supports plane
//! waves `exp(iG·r)` with `G = 2π·k/l` where the integer frequency `k` of FFT
//! bin `i` follows the standard wrap-around convention: `k = i` for
//! `i ≤ n/2`, else `k = i − n`.

/// Integer frequency of FFT bin `i` for transform length `n`
/// (`0, 1, …, n/2, −n/2+1, …, −1` ordering).
#[inline]
pub fn bin_freq(i: usize, n: usize) -> i64 {
    debug_assert!(i < n);
    if i <= n / 2 {
        i as i64
    } else {
        i as i64 - n as i64
    }
}

/// Reciprocal-lattice vector component `G = 2π·k/l` of FFT bin `i`.
#[inline]
pub fn bin_g(i: usize, n: usize, l: f64) -> f64 {
    std::f64::consts::TAU * bin_freq(i, n) as f64 / l
}

/// The largest |k| representable without aliasing (Nyquist) for length `n`.
#[inline]
pub fn nyquist(n: usize) -> i64 {
    (n / 2) as i64
}

/// Squared magnitude `|G|²` for a 3-D bin `(ix, iy, iz)` of an
/// `(nx, ny, nz)` grid over an orthorhombic cell `(lx, ly, lz)` — the plane-
/// wave kinetic energy is `|G|²/2`.
#[inline]
pub fn g_norm_sqr(
    (ix, iy, iz): (usize, usize, usize),
    (nx, ny, nz): (usize, usize, usize),
    (lx, ly, lz): (f64, f64, f64),
) -> f64 {
    let gx = bin_g(ix, nx, lx);
    let gy = bin_g(iy, ny, ly);
    let gz = bin_g(iz, nz, lz);
    gx * gx + gy * gy + gz * gz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_ordering() {
        let n = 8;
        let freqs: Vec<i64> = (0..n).map(|i| bin_freq(i, n)).collect();
        assert_eq!(freqs, vec![0, 1, 2, 3, 4, -3, -2, -1]);
    }

    #[test]
    fn odd_length_ordering() {
        let n = 5;
        let freqs: Vec<i64> = (0..n).map(|i| bin_freq(i, n)).collect();
        assert_eq!(freqs, vec![0, 1, 2, -2, -1]);
    }

    #[test]
    fn g_scales_inversely_with_cell() {
        let g1 = bin_g(1, 16, 10.0);
        let g2 = bin_g(1, 16, 20.0);
        assert!((g1 - 2.0 * g2).abs() < 1e-15);
        assert!((g1 - std::f64::consts::TAU / 10.0).abs() < 1e-15);
    }

    #[test]
    fn g_norm_isotropic_for_cubic() {
        let n = (16, 16, 16);
        let l = (12.0, 12.0, 12.0);
        let a = g_norm_sqr((1, 0, 0), n, l);
        let b = g_norm_sqr((0, 1, 0), n, l);
        let c = g_norm_sqr((0, 0, 15), n, l); // k = −1
        assert!((a - b).abs() < 1e-15);
        assert!((a - c).abs() < 1e-15);
    }

    #[test]
    fn nyquist_value() {
        assert_eq!(nyquist(16), 8);
        assert_eq!(nyquist(15), 7);
    }
}
