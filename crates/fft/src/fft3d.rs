//! Planned 3-D complex FFT over flattened arrays.
//!
//! Layout: `index = (ix·ny + iy)·nz + iz` (z fastest). The transform is a
//! pencil decomposition — all z-lines, then all y-lines, then all x-lines —
//! with rayon parallelism across pencils, mirroring the butterfly network
//! the paper draws inside each domain (Fig 3, red lines). Strided axes
//! gather each pencil into a contiguous scratch line before feeding the 1-D
//! kernel; that scratch never comes from a fresh `vec!`:
//!
//! * [`Fft3d::forward`] / [`Fft3d::inverse`] reuse a **thread-local**
//!   scratch line, so repeated transforms on the same worker thread are
//!   allocation-free;
//! * [`Fft3d::forward_with`] / [`Fft3d::inverse_with`] borrow the line from
//!   a caller-provided [`Workspace`] arena — the SCF hot path uses these so
//!   steady-state iterations perform zero allocations and every gather
//!   buffer shows up in the workspace hit/miss ledger.
//!
//! Scratch reuse cannot perturb results: a gather fully overwrites the
//! line before the 1-D kernel reads it, and each pencil's transform is
//! independent of task chunking, so outputs stay bitwise identical across
//! thread counts and scratch strategies (`tests/determinism.rs` enforces
//! this).

use crate::fft1d::Fft1d;
use mqmd_util::workspace::Workspace;
use mqmd_util::Complex64;
use rayon::prelude::*;
use std::cell::RefCell;

thread_local! {
    /// Per-thread gather line reused by the non-workspace entry points.
    static SCRATCH: RefCell<Vec<Complex64>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` on a zero-filled thread-local scratch line of `len` elements,
/// growing (and recording the allocation of) the line only when a larger
/// length is first requested on this thread.
fn with_tl_scratch<R>(len: usize, f: impl FnOnce(&mut [Complex64]) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut v = cell.borrow_mut();
        if v.capacity() < len {
            mqmd_util::trace::add_alloc(1, (len * size_of::<Complex64>()) as u64);
        }
        v.clear();
        v.resize(len, Complex64::ZERO);
        f(&mut v)
    })
}

/// A planned 3-D FFT of fixed dimensions.
pub struct Fft3d {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: Fft1d,
    plan_y: Fft1d,
    plan_z: Fft1d,
}

impl Fft3d {
    /// Plans a transform for an `(nx, ny, nz)` grid.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx >= 1 && ny >= 1 && nz >= 1);
        Self {
            nx,
            ny,
            nz,
            plan_x: Fft1d::new(nx),
            plan_y: Fft1d::new(ny),
            plan_z: Fft1d::new(nz),
        }
    }

    /// Creates a plan for a cubic grid.
    pub fn cubic(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Grid dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Returns false: a planned transform always has at least one point.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat index of grid point `(ix, iy, iz)`.
    #[inline(always)]
    pub fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (ix * self.ny + iy) * self.nz + iz
    }

    /// In-place forward transform (thread-local gather scratch).
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, true, None);
    }

    /// In-place inverse transform (scaled by `1/(nx·ny·nz)`; thread-local
    /// gather scratch).
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, false, None);
    }

    /// In-place forward transform with gather scratch borrowed from `ws`.
    /// Bitwise identical to [`Fft3d::forward`].
    pub fn forward_with(&self, data: &mut [Complex64], ws: &Workspace) {
        self.transform(data, true, Some(ws));
    }

    /// In-place inverse transform with gather scratch borrowed from `ws`.
    /// Bitwise identical to [`Fft3d::inverse`].
    pub fn inverse_with(&self, data: &mut [Complex64], ws: &Workspace) {
        self.transform(data, false, Some(ws));
    }

    /// Runs `work` on a zero-filled scratch line of `len` elements, pulled
    /// from `ws` when given, the thread-local line otherwise.
    fn with_scratch(ws: Option<&Workspace>, len: usize, work: impl FnOnce(&mut [Complex64])) {
        match ws {
            Some(ws) => work(&mut ws.borrow_c64(len)),
            None => with_tl_scratch(len, work),
        }
    }

    #[allow(clippy::needless_range_loop)] // strided pencil gather/scatter
    fn transform(&self, data: &mut [Complex64], fwd: bool, ws: Option<&Workspace>) {
        let _span = mqmd_util::trace::span("fft");
        assert_eq!(data.len(), self.len(), "buffer length mismatch");
        // Three axis sweeps, each streaming the field once in and once out.
        mqmd_util::trace::add_bytes(6 * 16 * data.len() as u64);
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);

        // Axis z: contiguous lines of length nz — no gather needed.
        if nz > 1 {
            data.par_chunks_mut(nz).for_each(|line| {
                if fwd {
                    self.plan_z.forward(line);
                } else {
                    self.plan_z.inverse(line);
                }
            });
        }

        // Axis y: stride nz within each x-plane; parallel over x-planes,
        // one scratch acquisition per plane task.
        if ny > 1 {
            data.par_chunks_mut(ny * nz).for_each(|plane| {
                Self::with_scratch(ws, ny, |buf| {
                    for iz in 0..nz {
                        for iy in 0..ny {
                            buf[iy] = plane[iy * nz + iz];
                        }
                        if fwd {
                            self.plan_y.forward(buf);
                        } else {
                            self.plan_y.inverse(buf);
                        }
                        for iy in 0..ny {
                            plane[iy * nz + iz] = buf[iy];
                        }
                    }
                });
            });
        }

        // Axis x: stride ny*nz; parallel over (iy, iz) pencils. The yz
        // range is split into a bounded number of chunks so each task
        // acquires scratch once, not once per pencil. We cannot hand out
        // disjoint &mut slices along a strided axis, so gather into the
        // scratch line and scatter through a raw pointer wrapper (each yz
        // pencil touches a disjoint index set).
        if nx > 1 {
            let stride = ny * nz;
            let chunk = stride
                .div_ceil(rayon::current_num_threads().max(1) * 8)
                .max(1);
            let n_chunks = stride.div_ceil(chunk);
            let ptr = SendPtr(data.as_mut_ptr());
            (0..n_chunks).into_par_iter().for_each(|c| {
                let p = ptr; // copy the Send wrapper into the closure
                Self::with_scratch(ws, nx, |buf| {
                    for yz in c * chunk..(c * chunk + chunk).min(stride) {
                        // SAFETY: pencil `yz` reads/writes only indices
                        // yz + ix*stride, which are disjoint across distinct
                        // yz values in [0, stride).
                        unsafe {
                            for ix in 0..nx {
                                buf[ix] = *p.0.add(yz + ix * stride);
                            }
                        }
                        if fwd {
                            self.plan_x.forward(buf);
                        } else {
                            self.plan_x.inverse(buf);
                        }
                        unsafe {
                            for ix in 0..nx {
                                *p.0.add(yz + ix * stride) = buf[ix];
                            }
                        }
                    }
                });
            });
        }
    }
}

/// Raw-pointer wrapper asserting Send/Sync for the disjoint-pencil scatter.
#[derive(Clone, Copy)]
struct SendPtr(*mut Complex64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::bin_freq;

    fn random_field(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex64::new(rng.normal(), rng.normal()))
            .collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn round_trip() {
        for (nx, ny, nz) in [(4, 4, 4), (8, 4, 2), (3, 5, 7), (16, 16, 16)] {
            let plan = Fft3d::new(nx, ny, nz);
            let x = random_field(plan.len(), (nx * 100 + ny * 10 + nz) as u64);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            assert!(max_err(&x, &y) < 1e-9, "dims {nx}x{ny}x{nz}");
        }
    }

    #[test]
    fn matches_separable_naive_dft() {
        // 3-D DFT of a separable product equals product of 1-D DFTs.
        let (nx, ny, nz) = (4usize, 8usize, 2usize);
        let fx = random_field(nx, 1);
        let fy = random_field(ny, 2);
        let fz = random_field(nz, 3);
        let plan = Fft3d::new(nx, ny, nz);
        let mut data = vec![Complex64::ZERO; plan.len()];
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    data[plan.index(ix, iy, iz)] = fx[ix] * fy[iy] * fz[iz];
                }
            }
        }
        plan.forward(&mut data);

        let mut fxh = fx.clone();
        let mut fyh = fy.clone();
        let mut fzh = fz.clone();
        Fft1d::new(nx).forward(&mut fxh);
        Fft1d::new(ny).forward(&mut fyh);
        Fft1d::new(nz).forward(&mut fzh);
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    let expect = fxh[ix] * fyh[iy] * fzh[iz];
                    let got = data[plan.index(ix, iy, iz)];
                    assert!((expect - got).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn plane_wave_gives_delta_in_g_space() {
        let n = 8;
        let plan = Fft3d::cubic(n);
        let (kx, ky, kz) = (2i64, -3i64, 1i64);
        let mut data = vec![Complex64::ZERO; plan.len()];
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    let phase = std::f64::consts::TAU
                        * (kx * ix as i64 + ky * iy as i64 + kz * iz as i64) as f64
                        / n as f64;
                    data[plan.index(ix, iy, iz)] = Complex64::cis(phase);
                }
            }
        }
        plan.forward(&mut data);
        let total = plan.len() as f64;
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    let here = (bin_freq(ix, n), bin_freq(iy, n), bin_freq(iz, n));
                    let mag = data[plan.index(ix, iy, iz)].abs();
                    if here == (kx, ky, kz) {
                        assert!((mag - total).abs() < 1e-8);
                    } else {
                        assert!(mag < 1e-8, "leakage at {here:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn parseval_3d() {
        let plan = Fft3d::new(8, 8, 8);
        let x = random_field(plan.len(), 42);
        let mut y = x.clone();
        plan.forward(&mut y);
        let e_r: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_g: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / plan.len() as f64;
        assert!((e_r - e_g).abs() < 1e-8 * e_r);
    }

    #[test]
    fn degenerate_dimensions() {
        // (1,1,n) reduces to a 1-D transform.
        let plan = Fft3d::new(1, 1, 16);
        let x = random_field(16, 5);
        let mut got = x.clone();
        plan.forward(&mut got);
        let mut expect = x;
        Fft1d::new(16).forward(&mut expect);
        assert!(max_err(&got, &expect) < 1e-10);
    }
}
