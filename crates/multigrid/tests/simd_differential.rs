//! Differential tests of the vectorized red-black Gauss–Seidel smoother
//! against the always-compiled scalar reference, plus the fixed-seed
//! golden-residual pin that locks run-to-run bitwise reproducibility.
//!
//! The vector smoother computes the identical scalar update per lane and
//! blends by color, so `rbgs_sweep_simd` must be **bitwise** equal to
//! `rbgs_sweep_scalar` on any grid — including the non-cubic and tiny
//! grids where most planes fall through to the scalar tail.

use mqmd_grid::UniformGrid3;
use mqmd_multigrid::smoother::{rbgs_sweep, rbgs_sweep_scalar, rbgs_sweep_simd};
use mqmd_multigrid::stencil::{norm, remove_mean, residual};
use mqmd_util::Xoshiro256pp;
use proptest::prelude::*;

fn random_field(grid: &UniformGrid3, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..grid.len()).map(|_| rng.normal()).collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], ctx: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: cell {i}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Red-black colouring needs even dims; nz in {2,4,…,12} sweeps the
    // vector loop's remainder classes: nz < 5 is all scalar tail, nz in
    // 5..=8 one partial vector block, larger grids mix full blocks with
    // the wrap-around tail.
    #[test]
    fn simd_sweep_is_bitwise_scalar(
        hx in 1usize..4, hy in 1usize..4, hz in 1usize..7,
        sweeps in 1usize..5, seed in any::<u64>(),
    ) {
        let (nx, ny, nz) = (2 * hx, 2 * hy, 2 * hz);
        let grid = UniformGrid3::new((nx, ny, nz), (5.0, 6.0, 7.0));
        let f = random_field(&grid, seed);
        let mut us = random_field(&grid, seed ^ 0xabcd);
        let mut uv = us.clone();
        for _ in 0..sweeps {
            rbgs_sweep_scalar(&grid, &mut us, &f);
            rbgs_sweep_simd(&grid, &mut uv, &f);
        }
        for (i, (x, y)) in us.iter().zip(&uv).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "{}x{}x{} sweeps={} cell {}", nx, ny, nz, sweeps, i
            );
        }
    }
}

/// The sweep parallelises over same-color planes whose writes are
/// disjoint and whose reads are all opposite-color, so the result must
/// not depend on the rayon worker count.
#[test]
fn rbgs_is_bitwise_deterministic_across_thread_counts() {
    let grid = UniformGrid3::cubic(16, 8.0);
    let f = random_field(&grid, 7);
    let reference = {
        let mut u = vec![0.0; grid.len()];
        for _ in 0..4 {
            rbgs_sweep(&grid, &mut u, &f);
        }
        u
    };
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("test pool");
        let got = pool.install(|| {
            let mut u = vec![0.0; grid.len()];
            for _ in 0..4 {
                rbgs_sweep(&grid, &mut u, &f);
            }
            u
        });
        assert_bits_eq(&got, &reference, &format!("{threads}-thread sweep"));
    }
}

/// Golden-residual pin: a fixed-seed smoothing problem must reproduce the
/// exact residual norm, to the bit, on every run and on both CI legs —
/// the scalar leg because it *is* the reference arithmetic, the SIMD leg
/// because the vector smoother is bitwise-scalar by construction. Any
/// future change to the smoother's op order shows up here first and must
/// consciously re-pin the constant.
#[test]
fn fixed_seed_smoothing_residual_matches_golden() {
    let grid = UniformGrid3::cubic(16, 8.0);
    let mut f = random_field(&grid, 20260808);
    remove_mean(&mut f);
    let mut u = vec![0.0; grid.len()];
    for _ in 0..8 {
        rbgs_sweep(&grid, &mut u, &f);
    }
    let mut r = vec![0.0; grid.len()];
    residual(&grid, &u, &f, &mut r);
    let res = norm(&r);

    const GOLDEN_BITS: u64 = 0x3FB46B482BCC846D;
    assert!(
        res.is_finite() && res > 0.0 && res < norm(&f),
        "smoothing must reduce the residual: {res}"
    );
    assert_eq!(
        res.to_bits(),
        GOLDEN_BITS,
        "golden residual drifted: got {res:.17e} ({:#018X}), expected {:.17e}",
        res.to_bits(),
        f64::from_bits(GOLDEN_BITS),
    );
}
