//! Property-based tests of the multigrid solver against the spectral
//! reference on random band-limited densities.

use mqmd_grid::UniformGrid3;
use mqmd_multigrid::stencil::{norm, remove_mean, residual};
use mqmd_multigrid::{FftPoisson, PoissonMultigrid};
use mqmd_util::Xoshiro256pp;
use proptest::prelude::*;

/// Random smooth periodic field: a few low-frequency Fourier modes.
fn smooth_field(grid: &UniformGrid3, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let (lx, ly, lz) = grid.lengths();
    let modes: Vec<(f64, f64, f64, f64, f64)> = (0..4)
        .map(|_| {
            (
                rng.below(3) as f64,
                rng.below(3) as f64,
                rng.below(3) as f64,
                rng.normal(),
                rng.uniform_in(0.0, std::f64::consts::TAU),
            )
        })
        .collect();
    let tau = std::f64::consts::TAU;
    grid.sample(|r| {
        modes
            .iter()
            .map(|&(kx, ky, kz, amp, phase)| {
                amp * (tau * (kx * r.x / lx + ky * r.y / ly + kz * r.z / lz) + phase).cos()
            })
            .sum()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn multigrid_converges_on_random_smooth_rhs(seed in any::<u64>(), l in 4.0..12.0f64) {
        let grid = UniformGrid3::cubic(16, l);
        let mut f = smooth_field(&grid, seed);
        remove_mean(&mut f);
        prop_assume!(norm(&f) > 1e-8);
        let mg = PoissonMultigrid::with_defaults(grid.clone());
        let mut u = vec![0.0; grid.len()];
        let report = mg.solve(&mut u, &f).unwrap();
        prop_assert!(report.rel_residual < 1e-8);
        // Verify against the operator directly.
        let mut r = vec![0.0; grid.len()];
        residual(&grid, &u, &f, &mut r);
        prop_assert!(norm(&r) < 1e-7 * (1.0 + norm(&f)));
    }

    #[test]
    fn multigrid_tracks_fft_solution(seed in any::<u64>()) {
        let grid = UniformGrid3::cubic(16, 8.0);
        let mut rho = smooth_field(&grid, seed);
        remove_mean(&mut rho);
        prop_assume!(norm(&rho) > 1e-8);
        let v_mg = PoissonMultigrid::with_defaults(grid.clone()).hartree(&rho).unwrap();
        let v_fft = FftPoisson::new(grid).hartree(&rho);
        let scale = v_fft.iter().map(|x| x.abs()).fold(1e-12, f64::max);
        for (a, b) in v_mg.iter().zip(&v_fft) {
            // Discretisation difference only: O(h²) of the 16³ grid.
            prop_assert!((a - b).abs() < 0.12 * scale, "{} vs {}", a, b);
        }
    }

    #[test]
    fn solution_is_linear_in_rhs(seed in any::<u64>(), alpha in -3.0..3.0f64) {
        let grid = UniformGrid3::cubic(8, 6.0);
        let mut f = smooth_field(&grid, seed);
        remove_mean(&mut f);
        prop_assume!(norm(&f) > 1e-8);
        let mg = PoissonMultigrid::with_defaults(grid.clone());
        let mut u1 = vec![0.0; grid.len()];
        mg.solve(&mut u1, &f).unwrap();
        let f2: Vec<f64> = f.iter().map(|&x| alpha * x).collect();
        prop_assume!(alpha.abs() > 1e-3);
        let mut u2 = vec![0.0; grid.len()];
        mg.solve(&mut u2, &f2).unwrap();
        let scale = u1.iter().map(|x| x.abs()).fold(1e-12, f64::max);
        for (a, b) in u1.iter().zip(&u2) {
            prop_assert!((alpha * a - b).abs() < 1e-5 * scale * (1.0 + alpha.abs()));
        }
    }
}
