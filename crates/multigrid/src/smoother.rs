//! Relaxation smoothers for the multigrid hierarchy.

use mqmd_grid::UniformGrid3;
use rayon::prelude::*;

/// One weighted-Jacobi sweep for `∇²u = f` with weight `omega`
/// (2/3 is the classical choice that damps the high-frequency error modes
/// multigrid relies on).
pub fn jacobi_sweep(grid: &UniformGrid3, u: &mut [f64], f: &[f64], omega: f64) {
    let (nx, ny, nz) = grid.dims();
    let (hx, hy, hz) = grid.spacing();
    let (cx, cy, cz) = (1.0 / (hx * hx), 1.0 / (hy * hy), 1.0 / (hz * hz));
    let diag = -2.0 * (cx + cy + cz);

    let u_old = u.to_vec();
    u.par_chunks_mut(ny * nz)
        .enumerate()
        .for_each(|(ix, plane)| {
            let xm = (ix + nx - 1) % nx;
            let xp = (ix + 1) % nx;
            for iy in 0..ny {
                let ym = (iy + ny - 1) % ny;
                let yp = (iy + 1) % ny;
                for iz in 0..nz {
                    let zm = (iz + nz - 1) % nz;
                    let zp = (iz + 1) % nz;
                    let nb = cx
                        * (u_old[(xm * ny + iy) * nz + iz] + u_old[(xp * ny + iy) * nz + iz])
                        + cy * (u_old[(ix * ny + ym) * nz + iz] + u_old[(ix * ny + yp) * nz + iz])
                        + cz * (u_old[(ix * ny + iy) * nz + zm] + u_old[(ix * ny + iy) * nz + zp]);
                    let idx = iy * nz + iz;
                    let new = (f[(ix * ny + iy) * nz + iz] - nb) / diag;
                    plane[idx] = (1.0 - omega) * u_old[(ix * ny + iy) * nz + iz] + omega * new;
                }
            }
        });
}

/// One red-black Gauss–Seidel sweep (both colours) for `∇²u = f`.
///
/// Red-black ordering decouples the update into two embarrassingly parallel
/// half-sweeps — the standard smoother on structured grids precisely because
/// it parallelises without ghost-cell races.
///
/// Dispatches to the vectorized z-line kernel when the `simd` feature is
/// compiled in and the CPU supports AVX2+FMA. The vector path evaluates
/// the stencil in the scalar operation order and blends the result into
/// current-colour lanes only, so it is **bitwise identical** to
/// [`rbgs_sweep_scalar`].
pub fn rbgs_sweep(grid: &UniformGrid3, u: &mut [f64], f: &[f64]) {
    if mqmd_util::simd::simd_available() {
        rbgs_sweep_simd(grid, u, f);
    } else {
        rbgs_sweep_scalar(grid, u, f);
    }
}

/// Scalar reference for [`rbgs_sweep`] — always compiled, the twin the
/// differential tests compare against.
pub fn rbgs_sweep_scalar(grid: &UniformGrid3, u: &mut [f64], f: &[f64]) {
    let (nx, ny, nz) = grid.dims();
    assert!(
        nx % 2 == 0 && ny % 2 == 0 && nz % 2 == 0,
        "red-black colouring on a periodic grid needs even dimensions"
    );
    let (hx, hy, hz) = grid.spacing();
    let (cx, cy, cz) = (1.0 / (hx * hx), 1.0 / (hy * hy), 1.0 / (hz * hz));
    let diag = -2.0 * (cx + cy + cz);

    for color in 0..2usize {
        // Each x-plane only reads neighbouring planes of the *opposite*
        // colour within the same half-sweep, so parallelising over planes is
        // race-free only if we snapshot… simpler and still correct: parallel
        // over planes with unsafe shared access is avoided by splitting the
        // sweep by plane parity as well.
        for plane_parity in 0..2usize {
            let uptr = SendPtr(u.as_mut_ptr());
            (0..nx)
                .into_par_iter()
                .filter(|ix| ix % 2 == plane_parity)
                .for_each(|ix| {
                    let p = uptr;
                    let xm = (ix + nx - 1) % nx;
                    let xp = (ix + 1) % nx;
                    for iy in 0..ny {
                        let ym = (iy + ny - 1) % ny;
                        let yp = (iy + 1) % ny;
                        for iz in 0..nz {
                            if (ix + iy + iz) % 2 != color {
                                continue;
                            }
                            let zm = (iz + nz - 1) % nz;
                            let zp = (iz + 1) % nz;
                            // SAFETY: writes touch only (ix,iy,iz) of the
                            // current colour and plane parity; reads touch
                            // neighbours, which differ in colour (same-sweep
                            // neighbours in y/z) or plane parity (x
                            // neighbours), so no written cell is read by a
                            // concurrent task within this half-sweep.
                            unsafe {
                                let at =
                                    |a: usize, b: usize, c: usize| *p.0.add((a * ny + b) * nz + c);
                                let nb = cx * (at(xm, iy, iz) + at(xp, iy, iz))
                                    + cy * (at(ix, ym, iz) + at(ix, yp, iz))
                                    + cz * (at(ix, iy, zm) + at(ix, iy, zp));
                                *p.0.add((ix * ny + iy) * nz + iz) =
                                    (f[(ix * ny + iy) * nz + iz] - nb) / diag;
                            }
                        }
                    }
                });
        }
    }
}

/// Vectorized form of [`rbgs_sweep`]: each `f64x4` holds four
/// same-colour cells, deinterleaved from an 8-cell z-window, so every
/// lane carries a Gauss–Seidel update and the stencil needs one division
/// per four cells. Falls back to the scalar reference when the vector
/// backend cannot run.
pub fn rbgs_sweep_simd(grid: &UniformGrid3, u: &mut [f64], f: &[f64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if mqmd_util::simd::simd_available() {
        let (nx, ny, nz) = grid.dims();
        assert!(
            nx % 2 == 0 && ny % 2 == 0 && nz % 2 == 0,
            "red-black colouring on a periodic grid needs even dimensions"
        );
        let (hx, hy, hz) = grid.spacing();
        let (cx, cy, cz) = (1.0 / (hx * hx), 1.0 / (hy * hy), 1.0 / (hz * hz));
        let diag = -2.0 * (cx + cy + cz);

        for color in 0..2usize {
            // Same plane-parity schedule (and hence the same read/write
            // disjointness argument) as the scalar reference.
            for plane_parity in 0..2usize {
                let uptr = SendPtr(u.as_mut_ptr());
                (0..nx)
                    .into_par_iter()
                    .filter(|ix| ix % 2 == plane_parity)
                    .for_each(|ix| {
                        let p = uptr;
                        // SAFETY: `simd_available` verified AVX2+FMA; the
                        // write set is the same (colour, plane-parity)
                        // cells as the scalar sweep.
                        unsafe {
                            avx::rbgs_plane_avx2(p.0, f, color, ix, nx, ny, nz, cx, cy, cz, diag);
                        }
                    });
            }
        }
        return;
    }
    rbgs_sweep_scalar(grid, u, f);
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx {
    use mqmd_util::simd::F64x4;

    /// Deinterleaves an 8-lane window `p[0..8]` and returns its even-index
    /// lanes `[p0, p2, p4, p6]`.
    ///
    /// # Safety
    /// `p` must have at least 8 elements readable.
    #[inline(always)]
    unsafe fn evens(p: *const f64) -> F64x4 {
        F64x4::load(p).deinterleave(F64x4::load(p.add(4))).0
    }

    /// One x-plane of the red-black sweep, vectorized along z.
    ///
    /// Same-colour cells along a z-line sit at stride 2, so each iteration
    /// deinterleaves an 8-cell window into its 4 update targets, evaluates
    /// the stencil once per target — no wasted opposite-colour lanes, one
    /// division per 4 updates — and re-interleaves with the untouched
    /// opposite-colour stream for the store. The stencil uses exactly the
    /// scalar operation order — `cx·(A+B) + cy·(C+D) + cz·(E+G)`, then
    /// `(f − nb) / diag` — so updated cells are bitwise the scalar
    /// values. The z-wrap cell (`iz = 0`) and the window tail use the
    /// scalar formula.
    ///
    /// # Safety
    /// Requires AVX2+FMA at runtime; `u` must point to the full
    /// `nx·ny·nz` field and this plane's (colour, parity) cells must not
    /// be written concurrently — the caller's schedule guarantees both.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn rbgs_plane_avx2(
        u: *mut f64,
        f: &[f64],
        color: usize,
        ix: usize,
        nx: usize,
        ny: usize,
        nz: usize,
        cx: f64,
        cy: f64,
        cz: f64,
        diag: f64,
    ) {
        let xm = (ix + nx - 1) % nx;
        let xp = (ix + 1) % nx;
        let cxv = F64x4::splat(cx);
        let cyv = F64x4::splat(cy);
        let czv = F64x4::splat(cz);
        let dv = F64x4::splat(diag);
        for iy in 0..ny {
            let ym = (iy + ny - 1) % ny;
            let yp = (iy + 1) % ny;
            let base = (ix * ny + iy) * nz;
            let bxm = (xm * ny + iy) * nz;
            let bxp = (xp * ny + iy) * nz;
            let bym = (ix * ny + ym) * nz;
            let byp = (ix * ny + yp) * nz;
            // This line's update targets are iz ≡ czpar (mod 2); start at
            // the first target past the z-wrap cell. Neighbour reads are
            // all opposite-colour cells, untouched this half-sweep, so
            // window order cannot matter.
            let czpar = (color + ix + iy) % 2;
            let mut t = if czpar == 0 { 2 } else { 1 };
            while t + 8 <= nz {
                // Center window u[t .. t+8): even lanes are the targets'
                // stale values (unused), odd lanes double as both the z+1
                // neighbours and the preserved opposite-colour stream.
                let (_, odds) =
                    F64x4::load(u.add(base + t)).deinterleave(F64x4::load(u.add(base + t + 4)));
                let zp = odds;
                // u[t-1 .. t+7): even lanes are the z−1 neighbours.
                let zm = evens(u.add(base + t - 1));
                let a = evens(u.add(bxm + t));
                let b = evens(u.add(bxp + t));
                let c = evens(u.add(bym + t));
                let d = evens(u.add(byp + t));
                let fv = evens(f.as_ptr().add(base + t));
                let nb = cxv
                    .mul(a.add(b))
                    .add(cyv.mul(c.add(d)))
                    .add(czv.mul(zm.add(zp)));
                let newv = fv.sub(nb).div(dv);
                let (s0, s1) = newv.interleave(odds);
                s0.store(u.add(base + t));
                s1.store(u.add(base + t + 4));
                t += 8;
            }
            // z-wrap boundary (iz = 0) and the window tail: scalar
            // formula, identical to the reference.
            for izc in core::iter::once(0).chain(t..nz) {
                if (ix + iy + izc) % 2 != color {
                    continue;
                }
                let zm = (izc + nz - 1) % nz;
                let zp = (izc + 1) % nz;
                let nb = cx * (*u.add(bxm + izc) + *u.add(bxp + izc))
                    + cy * (*u.add(bym + izc) + *u.add(byp + izc))
                    + cz * (*u.add(base + zm) + *u.add(base + zp));
                *u.add(base + izc) = (f[base + izc] - nb) / diag;
            }
        }
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{norm, remove_mean, residual};
    use std::f64::consts::TAU;

    fn setup(n: usize) -> (UniformGrid3, Vec<f64>, Vec<f64>) {
        let l = 6.0;
        let g = UniformGrid3::cubic(n, l);
        // Manufactured problem with zero-mean rhs.
        let k = TAU / l;
        let f = g.sample(|r| (k * r.x).sin() * (2.0 * k * r.y).cos());
        let u = vec![0.0; g.len()];
        (g, u, f)
    }

    #[test]
    fn jacobi_reduces_residual() {
        let (g, mut u, f) = setup(16);
        let mut r = vec![0.0; g.len()];
        residual(&g, &u, &f, &mut r);
        let r0 = norm(&r);
        for _ in 0..50 {
            jacobi_sweep(&g, &mut u, &f, 2.0 / 3.0);
        }
        remove_mean(&mut u);
        residual(&g, &u, &f, &mut r);
        assert!(norm(&r) < 0.8 * r0, "Jacobi failed to reduce residual");
    }

    #[test]
    fn rbgs_reduces_residual_faster_than_jacobi() {
        let (g, mut uj, f) = setup(16);
        let mut ug = uj.clone();
        let sweeps = 30;
        for _ in 0..sweeps {
            jacobi_sweep(&g, &mut uj, &f, 2.0 / 3.0);
        }
        for _ in 0..sweeps {
            rbgs_sweep(&g, &mut ug, &f);
        }
        let mut rj = vec![0.0; g.len()];
        let mut rg = vec![0.0; g.len()];
        residual(&g, &uj, &f, &mut rj);
        residual(&g, &ug, &f, &mut rg);
        assert!(norm(&rg) < norm(&rj), "RBGS should converge faster");
    }

    #[test]
    fn rbgs_deterministic_under_parallelism() {
        // The two-colour two-parity schedule must give identical results no
        // matter how rayon schedules the planes.
        let (g, mut u1, f) = setup(8);
        let mut u2 = u1.clone();
        for _ in 0..5 {
            rbgs_sweep(&g, &mut u1, &f);
        }
        for _ in 0..5 {
            rbgs_sweep(&g, &mut u2, &f);
        }
        for (a, b) in u1.iter().zip(&u2) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rbgs_simd_is_bitwise_scalar() {
        // Covers a vector-friendly size (16), the all-scalar-fallback
        // coarse size (4), and the partial-block size (8).
        for n in [4usize, 8, 16] {
            let (g, u0, f) = setup(n);
            let mut us = u0.clone();
            let mut uv = u0;
            for _ in 0..4 {
                rbgs_sweep_scalar(&g, &mut us, &f);
                rbgs_sweep_simd(&g, &mut uv, &f);
            }
            for (a, b) in us.iter().zip(&uv) {
                assert_eq!(a.to_bits(), b.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    fn smoothers_fix_exact_solution() {
        // If u already solves ∇²u = f, a sweep leaves the residual at zero.
        let l = 6.0;
        let g = UniformGrid3::cubic(16, l);
        let k = TAU / l;
        let u_exact = g.sample(|r| (k * r.x).sin());
        let mut f = vec![0.0; g.len()];
        crate::stencil::apply_laplacian(&g, &u_exact, &mut f);
        let mut u = u_exact.clone();
        rbgs_sweep(&g, &mut u, &f);
        let mut r = vec![0.0; g.len()];
        residual(&g, &u, &f, &mut r);
        assert!(norm(&r) < 1e-10);
    }
}
