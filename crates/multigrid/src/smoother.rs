//! Relaxation smoothers for the multigrid hierarchy.

use mqmd_grid::UniformGrid3;
use rayon::prelude::*;

/// One weighted-Jacobi sweep for `∇²u = f` with weight `omega`
/// (2/3 is the classical choice that damps the high-frequency error modes
/// multigrid relies on).
pub fn jacobi_sweep(grid: &UniformGrid3, u: &mut [f64], f: &[f64], omega: f64) {
    let (nx, ny, nz) = grid.dims();
    let (hx, hy, hz) = grid.spacing();
    let (cx, cy, cz) = (1.0 / (hx * hx), 1.0 / (hy * hy), 1.0 / (hz * hz));
    let diag = -2.0 * (cx + cy + cz);

    let u_old = u.to_vec();
    u.par_chunks_mut(ny * nz)
        .enumerate()
        .for_each(|(ix, plane)| {
            let xm = (ix + nx - 1) % nx;
            let xp = (ix + 1) % nx;
            for iy in 0..ny {
                let ym = (iy + ny - 1) % ny;
                let yp = (iy + 1) % ny;
                for iz in 0..nz {
                    let zm = (iz + nz - 1) % nz;
                    let zp = (iz + 1) % nz;
                    let nb = cx
                        * (u_old[(xm * ny + iy) * nz + iz] + u_old[(xp * ny + iy) * nz + iz])
                        + cy * (u_old[(ix * ny + ym) * nz + iz] + u_old[(ix * ny + yp) * nz + iz])
                        + cz * (u_old[(ix * ny + iy) * nz + zm] + u_old[(ix * ny + iy) * nz + zp]);
                    let idx = iy * nz + iz;
                    let new = (f[(ix * ny + iy) * nz + iz] - nb) / diag;
                    plane[idx] = (1.0 - omega) * u_old[(ix * ny + iy) * nz + iz] + omega * new;
                }
            }
        });
}

/// One red-black Gauss–Seidel sweep (both colours) for `∇²u = f`.
///
/// Red-black ordering decouples the update into two embarrassingly parallel
/// half-sweeps — the standard smoother on structured grids precisely because
/// it parallelises without ghost-cell races.
pub fn rbgs_sweep(grid: &UniformGrid3, u: &mut [f64], f: &[f64]) {
    let (nx, ny, nz) = grid.dims();
    assert!(
        nx % 2 == 0 && ny % 2 == 0 && nz % 2 == 0,
        "red-black colouring on a periodic grid needs even dimensions"
    );
    let (hx, hy, hz) = grid.spacing();
    let (cx, cy, cz) = (1.0 / (hx * hx), 1.0 / (hy * hy), 1.0 / (hz * hz));
    let diag = -2.0 * (cx + cy + cz);

    for color in 0..2usize {
        // Each x-plane only reads neighbouring planes of the *opposite*
        // colour within the same half-sweep, so parallelising over planes is
        // race-free only if we snapshot… simpler and still correct: parallel
        // over planes with unsafe shared access is avoided by splitting the
        // sweep by plane parity as well.
        for plane_parity in 0..2usize {
            let uptr = SendPtr(u.as_mut_ptr());
            (0..nx)
                .into_par_iter()
                .filter(|ix| ix % 2 == plane_parity)
                .for_each(|ix| {
                    let p = uptr;
                    let xm = (ix + nx - 1) % nx;
                    let xp = (ix + 1) % nx;
                    for iy in 0..ny {
                        let ym = (iy + ny - 1) % ny;
                        let yp = (iy + 1) % ny;
                        for iz in 0..nz {
                            if (ix + iy + iz) % 2 != color {
                                continue;
                            }
                            let zm = (iz + nz - 1) % nz;
                            let zp = (iz + 1) % nz;
                            // SAFETY: writes touch only (ix,iy,iz) of the
                            // current colour and plane parity; reads touch
                            // neighbours, which differ in colour (same-sweep
                            // neighbours in y/z) or plane parity (x
                            // neighbours), so no written cell is read by a
                            // concurrent task within this half-sweep.
                            unsafe {
                                let at =
                                    |a: usize, b: usize, c: usize| *p.0.add((a * ny + b) * nz + c);
                                let nb = cx * (at(xm, iy, iz) + at(xp, iy, iz))
                                    + cy * (at(ix, ym, iz) + at(ix, yp, iz))
                                    + cz * (at(ix, iy, zm) + at(ix, iy, zp));
                                *p.0.add((ix * ny + iy) * nz + iz) =
                                    (f[(ix * ny + iy) * nz + iz] - nb) / diag;
                            }
                        }
                    }
                });
        }
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{norm, remove_mean, residual};
    use std::f64::consts::TAU;

    fn setup(n: usize) -> (UniformGrid3, Vec<f64>, Vec<f64>) {
        let l = 6.0;
        let g = UniformGrid3::cubic(n, l);
        // Manufactured problem with zero-mean rhs.
        let k = TAU / l;
        let f = g.sample(|r| (k * r.x).sin() * (2.0 * k * r.y).cos());
        let u = vec![0.0; g.len()];
        (g, u, f)
    }

    #[test]
    fn jacobi_reduces_residual() {
        let (g, mut u, f) = setup(16);
        let mut r = vec![0.0; g.len()];
        residual(&g, &u, &f, &mut r);
        let r0 = norm(&r);
        for _ in 0..50 {
            jacobi_sweep(&g, &mut u, &f, 2.0 / 3.0);
        }
        remove_mean(&mut u);
        residual(&g, &u, &f, &mut r);
        assert!(norm(&r) < 0.8 * r0, "Jacobi failed to reduce residual");
    }

    #[test]
    fn rbgs_reduces_residual_faster_than_jacobi() {
        let (g, mut uj, f) = setup(16);
        let mut ug = uj.clone();
        let sweeps = 30;
        for _ in 0..sweeps {
            jacobi_sweep(&g, &mut uj, &f, 2.0 / 3.0);
        }
        for _ in 0..sweeps {
            rbgs_sweep(&g, &mut ug, &f);
        }
        let mut rj = vec![0.0; g.len()];
        let mut rg = vec![0.0; g.len()];
        residual(&g, &uj, &f, &mut rj);
        residual(&g, &ug, &f, &mut rg);
        assert!(norm(&rg) < norm(&rj), "RBGS should converge faster");
    }

    #[test]
    fn rbgs_deterministic_under_parallelism() {
        // The two-colour two-parity schedule must give identical results no
        // matter how rayon schedules the planes.
        let (g, mut u1, f) = setup(8);
        let mut u2 = u1.clone();
        for _ in 0..5 {
            rbgs_sweep(&g, &mut u1, &f);
        }
        for _ in 0..5 {
            rbgs_sweep(&g, &mut u2, &f);
        }
        for (a, b) in u1.iter().zip(&u2) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn smoothers_fix_exact_solution() {
        // If u already solves ∇²u = f, a sweep leaves the residual at zero.
        let l = 6.0;
        let g = UniformGrid3::cubic(16, l);
        let k = TAU / l;
        let u_exact = g.sample(|r| (k * r.x).sin());
        let mut f = vec![0.0; g.len()];
        crate::stencil::apply_laplacian(&g, &u_exact, &mut f);
        let mut u = u_exact.clone();
        rbgs_sweep(&g, &mut u, &f);
        let mut r = vec![0.0; g.len()];
        residual(&g, &u, &f, &mut r);
        assert!(norm(&r) < 1e-10);
    }
}
