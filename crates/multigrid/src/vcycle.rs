//! V-cycle multigrid driver for the periodic Poisson problem.

use crate::smoother::rbgs_sweep;
use crate::stencil::{norm, remove_mean, residual};
use crate::transfer::{coarsen, prolong_add, restrict_into};
use mqmd_grid::UniformGrid3;
use mqmd_util::{workspace, MqmdError, Result};

/// Configuration of the multigrid solver.
#[derive(Clone, Copy, Debug)]
pub struct MgConfig {
    /// Pre-smoothing sweeps per level.
    pub pre_smooth: usize,
    /// Post-smoothing sweeps per level.
    pub post_smooth: usize,
    /// Relaxation sweeps on the coarsest level.
    pub coarse_sweeps: usize,
    /// Smallest grid dimension kept in the hierarchy.
    pub min_dim: usize,
    /// Relative residual reduction target.
    pub tol: f64,
    /// Maximum V-cycles.
    pub max_cycles: usize,
}

impl Default for MgConfig {
    fn default() -> Self {
        Self {
            pre_smooth: 2,
            post_smooth: 2,
            coarse_sweeps: 60,
            min_dim: 4,
            tol: 1e-8,
            max_cycles: 40,
        }
    }
}

/// Convergence report of a multigrid solve.
#[derive(Clone, Copy, Debug)]
pub struct MgReport {
    /// V-cycles executed.
    pub cycles: usize,
    /// Final relative residual ‖f − ∇²u‖ / ‖f‖.
    pub rel_residual: f64,
    /// Geometric-mean per-cycle contraction factor.
    pub contraction: f64,
}

/// Geometric multigrid Poisson solver bound to one periodic grid hierarchy.
pub struct PoissonMultigrid {
    levels: Vec<UniformGrid3>,
    config: MgConfig,
}

/// Per-level scratch of one non-coarsest V-cycle level.
struct LevelBufs {
    r: Vec<f64>,
    coarse_rhs: Vec<f64>,
    coarse_u: Vec<f64>,
}

/// Preplanned scratch for [`PoissonMultigrid::solve_with`]: the residual and
/// coarse-correction buffers of every V-cycle level plus the fine-level
/// rhs/residual pair, allocated once by [`PoissonMultigrid::plan`] and reused
/// across cycles, solves, and SCF iterations.
pub struct MgHierarchy {
    levels: Vec<LevelBufs>,
    rhs: Vec<f64>,
    r: Vec<f64>,
    scratch: Vec<f64>,
    factors: Vec<f64>,
}

impl MgHierarchy {
    /// Fine-grid point count this hierarchy was planned for — lets callers
    /// that cache a hierarchy across solves check it still matches the
    /// solver's grid before reusing it.
    pub fn fine_len(&self) -> usize {
        self.rhs.len()
    }

    /// Number of coarse levels planned below the fine grid.
    pub fn coarse_levels(&self) -> usize {
        self.levels.len()
    }
}

impl PoissonMultigrid {
    /// Builds the grid hierarchy under the given fine grid.
    pub fn new(fine: UniformGrid3, config: MgConfig) -> Self {
        let mut levels = vec![fine];
        loop {
            let g = levels.last().expect("at least the fine level");
            let (nx, ny, nz) = g.dims();
            if nx % 2 != 0 || ny % 2 != 0 || nz % 2 != 0 {
                break;
            }
            if nx / 2 < config.min_dim || ny / 2 < config.min_dim || nz / 2 < config.min_dim {
                break;
            }
            levels.push(coarsen(g));
        }
        Self { levels, config }
    }

    /// Builds with default configuration.
    pub fn with_defaults(fine: UniformGrid3) -> Self {
        Self::new(fine, MgConfig::default())
    }

    /// Number of levels in the hierarchy (≥ 1).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Plans the per-level scratch buffers for [`Self::solve_with`] /
    /// [`Self::hartree_with`]. Build once per solver, reuse across solves.
    pub fn plan(&self) -> MgHierarchy {
        let mut bufs = Vec::with_capacity(self.levels.len().saturating_sub(1));
        let mut doubles = 3 * self.levels[0].len();
        for w in self.levels.windows(2) {
            doubles += w[0].len() + 2 * w[1].len();
            bufs.push(LevelBufs {
                r: vec![0.0; w[0].len()],
                coarse_rhs: vec![0.0; w[1].len()],
                coarse_u: vec![0.0; w[1].len()],
            });
        }
        workspace::record_plan_alloc((doubles * size_of::<f64>()) as u64);
        MgHierarchy {
            levels: bufs,
            rhs: vec![0.0; self.levels[0].len()],
            r: vec![0.0; self.levels[0].len()],
            scratch: vec![0.0; self.levels[0].len()],
            factors: Vec::new(),
        }
    }

    /// Solves `∇²u = f` (periodic, `f` projected to zero mean), writing the
    /// zero-mean solution into `u` (used as the initial guess).
    pub fn solve(&self, u: &mut [f64], f: &[f64]) -> Result<MgReport> {
        let mut hier = self.plan();
        self.solve_with(u, f, &mut hier)
    }

    /// Allocation-free form of [`Self::solve`]: all per-level scratch comes
    /// from a hierarchy planned by [`Self::plan`].
    pub fn solve_with(&self, u: &mut [f64], f: &[f64], hier: &mut MgHierarchy) -> Result<MgReport> {
        let fine = &self.levels[0];
        assert_eq!(u.len(), fine.len());
        assert_eq!(f.len(), fine.len());
        assert_eq!(
            hier.levels.len() + 1,
            self.levels.len(),
            "hierarchy was planned for a different solver"
        );
        hier.rhs.copy_from_slice(f);
        remove_mean(&mut hier.rhs);
        let f_norm = norm(&hier.rhs).max(1e-300);

        residual(fine, u, &hier.rhs, &mut hier.r);
        let mut prev = norm(&hier.r);
        let first = prev;
        hier.factors.clear();

        for cycle in 1..=self.config.max_cycles {
            self.vcycle(0, u, &hier.rhs, &mut hier.levels);
            remove_mean(u);
            residual(fine, u, &hier.rhs, &mut hier.r);
            let cur = norm(&hier.r);
            if prev > 0.0 {
                hier.factors.push((cur / prev).max(1e-16));
            }
            prev = cur;
            if cur / f_norm < self.config.tol {
                let contraction = geometric_mean(&hier.factors, first, cur);
                return Ok(MgReport {
                    cycles: cycle,
                    rel_residual: cur / f_norm,
                    contraction,
                });
            }
        }
        Err(MqmdError::Convergence {
            what: "multigrid Poisson".into(),
            iterations: self.config.max_cycles,
            residual: prev / f_norm,
        })
    }

    /// Convenience wrapper solving the Hartree problem `∇²V = −4πρ`.
    pub fn hartree(&self, rho: &[f64]) -> Result<Vec<f64>> {
        let mut v = vec![0.0; self.levels[0].len()];
        let mut hier = self.plan();
        self.hartree_with(rho, &mut v, &mut hier)?;
        Ok(v)
    }

    /// Allocation-free form of [`Self::hartree`]: writes the potential into
    /// `v` (zeroed first, so results match [`Self::hartree`] exactly).
    pub fn hartree_with(
        &self,
        rho: &[f64],
        v: &mut [f64],
        hier: &mut MgHierarchy,
    ) -> Result<MgReport> {
        let _span = mqmd_util::trace::span("poisson");
        assert_eq!(rho.len(), self.levels[0].len());
        let mut rhs = std::mem::take(&mut hier.scratch);
        for (s, &x) in rhs.iter_mut().zip(rho) {
            *s = -4.0 * std::f64::consts::PI * x;
        }
        v.fill(0.0);
        let out = self.solve_with(v, &rhs, hier);
        hier.scratch = rhs;
        out
    }

    fn vcycle(&self, level: usize, u: &mut [f64], f: &[f64], bufs: &mut [LevelBufs]) {
        let grid = &self.levels[level];
        if level + 1 == self.levels.len() {
            for _ in 0..self.config.coarse_sweeps {
                rbgs_sweep(grid, u, f);
            }
            remove_mean(u);
            return;
        }
        let (b, rest) = bufs
            .split_first_mut()
            .expect("one buffer set per non-coarsest level");
        for _ in 0..self.config.pre_smooth {
            rbgs_sweep(grid, u, f);
        }
        residual(grid, u, f, &mut b.r);
        let coarse_grid = &self.levels[level + 1];
        restrict_into(grid, &b.r, coarse_grid, &mut b.coarse_rhs);
        remove_mean(&mut b.coarse_rhs);
        b.coarse_u.fill(0.0);
        self.vcycle(level + 1, &mut b.coarse_u, &b.coarse_rhs, rest);
        prolong_add(coarse_grid, &b.coarse_u, grid, u);
        for _ in 0..self.config.post_smooth {
            rbgs_sweep(grid, u, f);
        }
    }
}

fn geometric_mean(factors: &[f64], first: f64, last: f64) -> f64 {
    if factors.is_empty() {
        return 0.0;
    }
    if first > 0.0 && last > 0.0 {
        (last / first).powf(1.0 / factors.len() as f64)
    } else {
        factors
            .iter()
            .product::<f64>()
            .powf(1.0 / factors.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fftpoisson::FftPoisson;
    use std::f64::consts::TAU;

    #[test]
    fn hierarchy_depth() {
        let mg = PoissonMultigrid::with_defaults(UniformGrid3::cubic(32, 8.0));
        assert_eq!(mg.levels(), 4); // 32 → 16 → 8 → 4
    }

    #[test]
    fn converges_on_smooth_rhs() {
        let l = 6.0;
        let g = UniformGrid3::cubic(32, l);
        let k = TAU / l;
        let f = g.sample(|r| (k * r.x).sin() * (k * r.y).cos() + 0.5 * (2.0 * k * r.z).sin());
        let mg = PoissonMultigrid::with_defaults(g);
        let mut u = vec![0.0; f.len()];
        let report = mg.solve(&mut u, &f).expect("must converge");
        assert!(report.rel_residual < 1e-8);
        assert!(
            report.contraction < 0.35,
            "textbook MG contraction, got {}",
            report.contraction
        );
        assert!(report.cycles < 25);
    }

    #[test]
    fn matches_fft_solver() {
        let l = 5.0;
        let g = UniformGrid3::cubic(32, l);
        let k = TAU / l;
        // Zero-mean smooth density.
        let rho = g.sample(|r| (k * r.x).cos() * (k * r.y).sin() + 0.3 * (2.0 * k * r.z).cos());
        let mg = PoissonMultigrid::with_defaults(g.clone());
        let v_mg = mg.hartree(&rho).unwrap();
        let v_fft = FftPoisson::new(g.clone()).hartree(&rho);
        // The FFT solves the continuous (spectral) operator, MG the 7-point
        // discrete one: they agree to discretisation error O(h²).
        let scale = v_fft.iter().map(|x| x.abs()).fold(0.0, f64::max);
        for (a, b) in v_mg.iter().zip(&v_fft) {
            assert!((a - b).abs() < 0.02 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn discrete_exactness_single_mode() {
        // For an eigenfunction of the discrete Laplacian the MG solution must
        // match the discrete eigenvalue relation essentially exactly.
        let l = 4.0;
        let n = 16;
        let g = UniformGrid3::cubic(n, l);
        let k = TAU / l;
        let f = g.sample(|r| (k * r.x).sin());
        let mg = PoissonMultigrid::with_defaults(g.clone());
        let mut u = vec![0.0; f.len()];
        mg.solve(&mut u, &f).unwrap();
        let h = l / n as f64;
        let eig = -(2.0 / (h * h)) * (1.0 - (k * h).cos());
        let expect = g.sample(|r| (k * r.x).sin() / eig);
        for (a, b) in u.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn anisotropic_grid_converges() {
        let g = UniformGrid3::new((16, 32, 8), (4.0, 8.0, 2.0));
        let f = g.sample(|r| (TAU * r.x / 4.0).sin() * (TAU * r.y / 8.0).cos());
        let mg = PoissonMultigrid::with_defaults(g);
        let mut u = vec![0.0; f.len()];
        let report = mg.solve(&mut u, &f).expect("must converge");
        assert!(report.rel_residual < 1e-8);
    }

    /// A warm (reused) hierarchy must give bitwise-identical solutions to a
    /// freshly planned one — pooled level buffers are unobservable.
    #[test]
    fn warm_hierarchy_is_bitwise_identical() {
        let l = 6.0;
        let g = UniformGrid3::cubic(16, l);
        let k = TAU / l;
        let rho_a = g.sample(|r| (k * r.x).cos() * (k * r.y).sin());
        let rho_b = g.sample(|r| 0.7 * (2.0 * k * r.z).cos() + (k * r.x).sin());
        let mg = PoissonMultigrid::with_defaults(g.clone());
        let mut hier = mg.plan();
        let mut warm = vec![0.0; g.len()];
        // Dirty the hierarchy with an unrelated solve, then compare.
        mg.hartree_with(&rho_b, &mut warm, &mut hier).unwrap();
        for rho in [&rho_a, &rho_b] {
            let cold = mg.hartree(rho).unwrap();
            mg.hartree_with(rho, &mut warm, &mut hier).unwrap();
            for (i, (a, b)) in cold.iter().zip(&warm).enumerate() {
                assert!(a.to_bits() == b.to_bits(), "mismatch at {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn initial_guess_reuse_speeds_convergence() {
        // SCF loops re-solve with slowly varying rhs: warm starts must help.
        let l = 6.0;
        let g = UniformGrid3::cubic(16, l);
        let k = TAU / l;
        let f = g.sample(|r| (k * r.x).sin());
        let mg = PoissonMultigrid::with_defaults(g);
        let mut cold = vec![0.0; f.len()];
        let r1 = mg.solve(&mut cold, &f).unwrap();
        let mut warm = cold.clone();
        let r2 = mg.solve(&mut warm, &f).unwrap();
        assert!(r2.cycles <= r1.cycles);
        assert_eq!(
            r2.cycles, 1,
            "already-converged start needs one confirming cycle"
        );
    }
}
