//! V-cycle multigrid driver for the periodic Poisson problem.

use crate::smoother::rbgs_sweep;
use crate::stencil::{norm, remove_mean, residual};
use crate::transfer::{coarsen, prolong_add, restrict};
use mqmd_grid::UniformGrid3;
use mqmd_util::{MqmdError, Result};

/// Configuration of the multigrid solver.
#[derive(Clone, Copy, Debug)]
pub struct MgConfig {
    /// Pre-smoothing sweeps per level.
    pub pre_smooth: usize,
    /// Post-smoothing sweeps per level.
    pub post_smooth: usize,
    /// Relaxation sweeps on the coarsest level.
    pub coarse_sweeps: usize,
    /// Smallest grid dimension kept in the hierarchy.
    pub min_dim: usize,
    /// Relative residual reduction target.
    pub tol: f64,
    /// Maximum V-cycles.
    pub max_cycles: usize,
}

impl Default for MgConfig {
    fn default() -> Self {
        Self {
            pre_smooth: 2,
            post_smooth: 2,
            coarse_sweeps: 60,
            min_dim: 4,
            tol: 1e-8,
            max_cycles: 40,
        }
    }
}

/// Convergence report of a multigrid solve.
#[derive(Clone, Copy, Debug)]
pub struct MgReport {
    /// V-cycles executed.
    pub cycles: usize,
    /// Final relative residual ‖f − ∇²u‖ / ‖f‖.
    pub rel_residual: f64,
    /// Geometric-mean per-cycle contraction factor.
    pub contraction: f64,
}

/// Geometric multigrid Poisson solver bound to one periodic grid hierarchy.
pub struct PoissonMultigrid {
    levels: Vec<UniformGrid3>,
    config: MgConfig,
}

impl PoissonMultigrid {
    /// Builds the grid hierarchy under the given fine grid.
    pub fn new(fine: UniformGrid3, config: MgConfig) -> Self {
        let mut levels = vec![fine];
        loop {
            let g = levels.last().expect("at least the fine level");
            let (nx, ny, nz) = g.dims();
            if nx % 2 != 0 || ny % 2 != 0 || nz % 2 != 0 {
                break;
            }
            if nx / 2 < config.min_dim || ny / 2 < config.min_dim || nz / 2 < config.min_dim {
                break;
            }
            levels.push(coarsen(g));
        }
        Self { levels, config }
    }

    /// Builds with default configuration.
    pub fn with_defaults(fine: UniformGrid3) -> Self {
        Self::new(fine, MgConfig::default())
    }

    /// Number of levels in the hierarchy (≥ 1).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Solves `∇²u = f` (periodic, `f` projected to zero mean), writing the
    /// zero-mean solution into `u` (used as the initial guess).
    pub fn solve(&self, u: &mut [f64], f: &[f64]) -> Result<MgReport> {
        let fine = &self.levels[0];
        assert_eq!(u.len(), fine.len());
        assert_eq!(f.len(), fine.len());
        let mut rhs = f.to_vec();
        remove_mean(&mut rhs);
        let f_norm = norm(&rhs).max(1e-300);

        let mut r = vec![0.0; fine.len()];
        residual(fine, u, &rhs, &mut r);
        let mut prev = norm(&r);
        let first = prev;
        let mut factors = Vec::new();

        for cycle in 1..=self.config.max_cycles {
            self.vcycle(0, u, &rhs);
            remove_mean(u);
            residual(fine, u, &rhs, &mut r);
            let cur = norm(&r);
            if prev > 0.0 {
                factors.push((cur / prev).max(1e-16));
            }
            prev = cur;
            if cur / f_norm < self.config.tol {
                let contraction = geometric_mean(&factors, first, cur);
                return Ok(MgReport {
                    cycles: cycle,
                    rel_residual: cur / f_norm,
                    contraction,
                });
            }
        }
        Err(MqmdError::Convergence {
            what: "multigrid Poisson".into(),
            iterations: self.config.max_cycles,
            residual: prev / f_norm,
        })
    }

    /// Convenience wrapper solving the Hartree problem `∇²V = −4πρ`.
    pub fn hartree(&self, rho: &[f64]) -> Result<Vec<f64>> {
        let _span = mqmd_util::trace::span("poisson");
        let rhs: Vec<f64> = rho
            .iter()
            .map(|&x| -4.0 * std::f64::consts::PI * x)
            .collect();
        let mut v = vec![0.0; self.levels[0].len()];
        self.solve(&mut v, &rhs)?;
        Ok(v)
    }

    fn vcycle(&self, level: usize, u: &mut [f64], f: &[f64]) {
        let grid = &self.levels[level];
        if level + 1 == self.levels.len() {
            for _ in 0..self.config.coarse_sweeps {
                rbgs_sweep(grid, u, f);
            }
            remove_mean(u);
            return;
        }
        for _ in 0..self.config.pre_smooth {
            rbgs_sweep(grid, u, f);
        }
        let mut r = vec![0.0; grid.len()];
        residual(grid, u, f, &mut r);
        let coarse_grid = &self.levels[level + 1];
        let mut coarse_rhs = restrict(grid, &r, coarse_grid);
        remove_mean(&mut coarse_rhs);
        let mut coarse_u = vec![0.0; coarse_grid.len()];
        self.vcycle(level + 1, &mut coarse_u, &coarse_rhs);
        prolong_add(coarse_grid, &coarse_u, grid, u);
        for _ in 0..self.config.post_smooth {
            rbgs_sweep(grid, u, f);
        }
    }
}

fn geometric_mean(factors: &[f64], first: f64, last: f64) -> f64 {
    if factors.is_empty() {
        return 0.0;
    }
    if first > 0.0 && last > 0.0 {
        (last / first).powf(1.0 / factors.len() as f64)
    } else {
        factors
            .iter()
            .product::<f64>()
            .powf(1.0 / factors.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fftpoisson::FftPoisson;
    use std::f64::consts::TAU;

    #[test]
    fn hierarchy_depth() {
        let mg = PoissonMultigrid::with_defaults(UniformGrid3::cubic(32, 8.0));
        assert_eq!(mg.levels(), 4); // 32 → 16 → 8 → 4
    }

    #[test]
    fn converges_on_smooth_rhs() {
        let l = 6.0;
        let g = UniformGrid3::cubic(32, l);
        let k = TAU / l;
        let f = g.sample(|r| (k * r.x).sin() * (k * r.y).cos() + 0.5 * (2.0 * k * r.z).sin());
        let mg = PoissonMultigrid::with_defaults(g);
        let mut u = vec![0.0; f.len()];
        let report = mg.solve(&mut u, &f).expect("must converge");
        assert!(report.rel_residual < 1e-8);
        assert!(
            report.contraction < 0.35,
            "textbook MG contraction, got {}",
            report.contraction
        );
        assert!(report.cycles < 25);
    }

    #[test]
    fn matches_fft_solver() {
        let l = 5.0;
        let g = UniformGrid3::cubic(32, l);
        let k = TAU / l;
        // Zero-mean smooth density.
        let rho = g.sample(|r| (k * r.x).cos() * (k * r.y).sin() + 0.3 * (2.0 * k * r.z).cos());
        let mg = PoissonMultigrid::with_defaults(g.clone());
        let v_mg = mg.hartree(&rho).unwrap();
        let v_fft = FftPoisson::new(g.clone()).hartree(&rho);
        // The FFT solves the continuous (spectral) operator, MG the 7-point
        // discrete one: they agree to discretisation error O(h²).
        let scale = v_fft.iter().map(|x| x.abs()).fold(0.0, f64::max);
        for (a, b) in v_mg.iter().zip(&v_fft) {
            assert!((a - b).abs() < 0.02 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn discrete_exactness_single_mode() {
        // For an eigenfunction of the discrete Laplacian the MG solution must
        // match the discrete eigenvalue relation essentially exactly.
        let l = 4.0;
        let n = 16;
        let g = UniformGrid3::cubic(n, l);
        let k = TAU / l;
        let f = g.sample(|r| (k * r.x).sin());
        let mg = PoissonMultigrid::with_defaults(g.clone());
        let mut u = vec![0.0; f.len()];
        mg.solve(&mut u, &f).unwrap();
        let h = l / n as f64;
        let eig = -(2.0 / (h * h)) * (1.0 - (k * h).cos());
        let expect = g.sample(|r| (k * r.x).sin() / eig);
        for (a, b) in u.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn anisotropic_grid_converges() {
        let g = UniformGrid3::new((16, 32, 8), (4.0, 8.0, 2.0));
        let f = g.sample(|r| (TAU * r.x / 4.0).sin() * (TAU * r.y / 8.0).cos());
        let mg = PoissonMultigrid::with_defaults(g);
        let mut u = vec![0.0; f.len()];
        let report = mg.solve(&mut u, &f).expect("must converge");
        assert!(report.rel_residual < 1e-8);
    }

    #[test]
    fn initial_guess_reuse_speeds_convergence() {
        // SCF loops re-solve with slowly varying rhs: warm starts must help.
        let l = 6.0;
        let g = UniformGrid3::cubic(16, l);
        let k = TAU / l;
        let f = g.sample(|r| (k * r.x).sin());
        let mg = PoissonMultigrid::with_defaults(g);
        let mut cold = vec![0.0; f.len()];
        let r1 = mg.solve(&mut cold, &f).unwrap();
        let mut warm = cold.clone();
        let r2 = mg.solve(&mut warm, &f).unwrap();
        assert!(r2.cycles <= r1.cycles);
        assert_eq!(
            r2.cycles, 1,
            "already-converged start needs one confirming cycle"
        );
    }
}
