//! Inter-grid transfer operators: full-weighting restriction and trilinear
//! prolongation between a fine grid and the factor-2 coarse grid.

use mqmd_grid::UniformGrid3;

/// Returns the coarse grid obtained by halving each dimension.
///
/// # Panics
/// Panics unless all fine dimensions are even.
pub fn coarsen(fine: &UniformGrid3) -> UniformGrid3 {
    let (nx, ny, nz) = fine.dims();
    assert!(
        nx % 2 == 0 && ny % 2 == 0 && nz % 2 == 0,
        "cannot coarsen odd grid {nx}x{ny}x{nz}"
    );
    UniformGrid3::new((nx / 2, ny / 2, nz / 2), fine.lengths())
}

/// Full-weighting restriction: each coarse value is the 27-point weighted
/// average of the co-located fine cell and its neighbours (weights
/// 8/4/2/1 ÷ 64), with periodic wrapping.
pub fn restrict(fine_grid: &UniformGrid3, fine: &[f64], coarse_grid: &UniformGrid3) -> Vec<f64> {
    let mut out = vec![0.0; coarse_grid.len()];
    restrict_into(fine_grid, fine, coarse_grid, &mut out);
    out
}

/// Allocation-free form of [`restrict`]: writes the coarse field into `out`.
pub fn restrict_into(
    fine_grid: &UniformGrid3,
    fine: &[f64],
    coarse_grid: &UniformGrid3,
    out: &mut [f64],
) {
    let (nx, ny, nz) = fine_grid.dims();
    let (cx, cy, cz) = coarse_grid.dims();
    assert_eq!((cx, cy, cz), (nx / 2, ny / 2, nz / 2));
    assert_eq!(fine.len(), fine_grid.len());
    assert_eq!(out.len(), coarse_grid.len());

    for icx in 0..cx {
        for icy in 0..cy {
            for icz in 0..cz {
                let fx = 2 * icx;
                let fy = 2 * icy;
                let fz = 2 * icz;
                let mut acc = 0.0;
                for dx in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dz in -1i64..=1 {
                            let w = (2 - dx.abs()) * (2 - dy.abs()) * (2 - dz.abs());
                            let idx = fine_grid.index_wrapped(
                                fx as i64 + dx,
                                fy as i64 + dy,
                                fz as i64 + dz,
                            );
                            acc += w as f64 * fine[idx];
                        }
                    }
                }
                out[coarse_grid.index(icx, icy, icz)] = acc / 64.0;
            }
        }
    }
}

/// Trilinear prolongation: interpolates a coarse field onto the fine grid
/// and *adds* it into `fine` (the coarse-grid correction step).
pub fn prolong_add(
    coarse_grid: &UniformGrid3,
    coarse: &[f64],
    fine_grid: &UniformGrid3,
    fine: &mut [f64],
) {
    let (nx, ny, nz) = fine_grid.dims();
    let (cx, cy, cz) = coarse_grid.dims();
    assert_eq!((cx, cy, cz), (nx / 2, ny / 2, nz / 2));
    assert_eq!(coarse.len(), coarse_grid.len());
    assert_eq!(fine.len(), fine_grid.len());

    for ix in 0..nx {
        // Fine point ix sits between coarse points ix/2 and (ix/2 + parity).
        let (x0, x1, wx) = split(ix, cx);
        for iy in 0..ny {
            let (y0, y1, wy) = split(iy, cy);
            for iz in 0..nz {
                let (z0, z1, wz) = split(iz, cz);
                let mut v = 0.0;
                for (xa, wa) in [(x0, 1.0 - wx), (x1, wx)] {
                    if wa == 0.0 {
                        continue;
                    }
                    for (ya, wb) in [(y0, 1.0 - wy), (y1, wy)] {
                        if wb == 0.0 {
                            continue;
                        }
                        for (za, wc) in [(z0, 1.0 - wz), (z1, wz)] {
                            if wc == 0.0 {
                                continue;
                            }
                            v += wa * wb * wc * coarse[coarse_grid.index(xa, ya, za)];
                        }
                    }
                }
                fine[fine_grid.index(ix, iy, iz)] += v;
            }
        }
    }
}

/// For fine index `i` over `nc` coarse points: returns the two bracketing
/// coarse indices and the interpolation weight of the upper one.
#[inline]
fn split(i: usize, nc: usize) -> (usize, usize, f64) {
    if i.is_multiple_of(2) {
        (i / 2, i / 2, 0.0)
    } else {
        (i / 2, (i / 2 + 1) % nc, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restrict_preserves_constants() {
        let fg = UniformGrid3::cubic(8, 4.0);
        let cg = coarsen(&fg);
        let fine = vec![2.5; fg.len()];
        let coarse = restrict(&fg, &fine, &cg);
        for v in &coarse {
            assert!((v - 2.5).abs() < 1e-13);
        }
    }

    #[test]
    fn prolong_preserves_constants() {
        let fg = UniformGrid3::cubic(8, 4.0);
        let cg = coarsen(&fg);
        let coarse = vec![1.5; cg.len()];
        let mut fine = vec![0.0; fg.len()];
        prolong_add(&cg, &coarse, &fg, &mut fine);
        for v in &fine {
            assert!((v - 1.5).abs() < 1e-13);
        }
    }

    #[test]
    fn restriction_conserves_integral() {
        // Full weighting preserves the mean (hence the integral) of a field.
        let fg = UniformGrid3::cubic(8, 4.0);
        let cg = coarsen(&fg);
        let fine = fg.sample(|r| (r.x - 1.0) * (r.y + 0.3) + r.z);
        let coarse = restrict(&fg, &fine, &cg);
        let mf = fine.iter().sum::<f64>() / fine.len() as f64;
        let mc = coarse.iter().sum::<f64>() / coarse.len() as f64;
        assert!((mf - mc).abs() < 1e-12);
    }

    #[test]
    fn prolong_exact_at_coincident_points() {
        let fg = UniformGrid3::cubic(8, 4.0);
        let cg = coarsen(&fg);
        let coarse: Vec<f64> = (0..cg.len()).map(|i| i as f64).collect();
        let mut fine = vec![0.0; fg.len()];
        prolong_add(&cg, &coarse, &fg, &mut fine);
        for icx in 0..4 {
            for icy in 0..4 {
                for icz in 0..4 {
                    let cv = coarse[cg.index(icx, icy, icz)];
                    let fv = fine[fg.index(2 * icx, 2 * icy, 2 * icz)];
                    assert!((cv - fv).abs() < 1e-13);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn odd_grid_cannot_coarsen() {
        coarsen(&UniformGrid3::new((6, 5, 8), (1.0, 1.0, 1.0)));
    }
}
