//! # mqmd-multigrid
//!
//! Geometric multigrid solver for the periodic Poisson equation
//! `∇²V_H(r) = −4π·ρ(r)` — the *globally scalable* half of the paper's
//! GSLF electronic-structure solver (§3.2). Once the global density is
//! assembled from the DC domains, the Hartree potential is obtained on the
//! global real-space grid by a V-cycle hierarchy whose tree structure (blue
//! lines of the paper's Fig 3) carries progressively less data at upper
//! levels, which is exactly what makes the method scale on tree networks.
//!
//! * [`stencil`] — periodic 7-point Laplacian and residuals;
//! * [`smoother`] — weighted-Jacobi and red-black Gauss–Seidel sweeps;
//! * [`transfer`] — full-weighting restriction / trilinear prolongation;
//! * [`vcycle`] — the V-cycle driver and the user-facing
//!   [`vcycle::PoissonMultigrid`];
//! * [`fftpoisson`] — an FFT-based reference solver used for verification
//!   (and as the in-domain Hartree path in `mqmd-dft`).

pub mod fftpoisson;
pub mod smoother;
pub mod stencil;
pub mod transfer;
pub mod vcycle;

pub use fftpoisson::FftPoisson;
pub use vcycle::{MgHierarchy, PoissonMultigrid};
