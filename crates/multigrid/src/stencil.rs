//! Periodic 7-point Laplacian stencil.

use mqmd_grid::UniformGrid3;
use rayon::prelude::*;

/// Applies the second-order 7-point Laplacian with periodic boundary
/// conditions: `out = ∇²u`.
pub fn apply_laplacian(grid: &UniformGrid3, u: &[f64], out: &mut [f64]) {
    let (nx, ny, nz) = grid.dims();
    assert_eq!(u.len(), grid.len());
    assert_eq!(out.len(), grid.len());
    let (hx, hy, hz) = grid.spacing();
    let (cx, cy, cz) = (1.0 / (hx * hx), 1.0 / (hy * hy), 1.0 / (hz * hz));
    let diag = -2.0 * (cx + cy + cz);

    out.par_chunks_mut(ny * nz)
        .enumerate()
        .for_each(|(ix, plane)| {
            let xm = (ix + nx - 1) % nx;
            let xp = (ix + 1) % nx;
            for iy in 0..ny {
                let ym = (iy + ny - 1) % ny;
                let yp = (iy + 1) % ny;
                for iz in 0..nz {
                    let zm = (iz + nz - 1) % nz;
                    let zp = (iz + 1) % nz;
                    let idx = iy * nz + iz;
                    plane[idx] = diag * u[(ix * ny + iy) * nz + iz]
                        + cx * (u[(xm * ny + iy) * nz + iz] + u[(xp * ny + iy) * nz + iz])
                        + cy * (u[(ix * ny + ym) * nz + iz] + u[(ix * ny + yp) * nz + iz])
                        + cz * (u[(ix * ny + iy) * nz + zm] + u[(ix * ny + iy) * nz + zp]);
                }
            }
        });
}

/// Computes the residual `r = f − ∇²u`.
pub fn residual(grid: &UniformGrid3, u: &[f64], f: &[f64], r: &mut [f64]) {
    apply_laplacian(grid, u, r);
    for (ri, fi) in r.iter_mut().zip(f) {
        *ri = fi - *ri;
    }
}

/// L2 norm (per point) of a field — the convergence metric.
pub fn norm(field: &[f64]) -> f64 {
    (field.iter().map(|x| x * x).sum::<f64>() / field.len() as f64).sqrt()
}

/// Subtracts the mean, projecting out the constant nullspace of the periodic
/// Laplacian.
pub fn remove_mean(field: &mut [f64]) {
    let mean = field.iter().sum::<f64>() / field.len() as f64;
    for x in field.iter_mut() {
        *x -= mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn laplacian_of_constant_is_zero() {
        let g = UniformGrid3::cubic(8, 4.0);
        let u = vec![3.7; g.len()];
        let mut out = vec![0.0; g.len()];
        apply_laplacian(&g, &u, &mut out);
        assert!(norm(&out) < 1e-12);
    }

    #[test]
    fn laplacian_of_plane_wave() {
        // ∇² sin(kx) = −k² sin(kx); the discrete operator has eigenvalue
        // −(2/h²)(1 − cos kh) → −k² as h → 0.
        let n = 32;
        let l = 8.0;
        let g = UniformGrid3::cubic(n, l);
        let k = TAU / l;
        let u = g.sample(|r| (k * r.x).sin());
        let mut out = vec![0.0; g.len()];
        apply_laplacian(&g, &u, &mut out);
        let h = l / n as f64;
        let eig = -(2.0 / (h * h)) * (1.0 - (k * h).cos());
        for (o, ui) in out.iter().zip(&u) {
            assert!((o - eig * ui).abs() < 1e-10);
        }
        // And the discrete eigenvalue approximates −k² to O(h²).
        assert!((eig + k * k).abs() < 0.01 * k * k);
    }

    #[test]
    fn residual_of_exact_solution_vanishes() {
        let g = UniformGrid3::cubic(16, 5.0);
        let u = vec![0.0; g.len()];
        let f = vec![0.0; g.len()];
        let mut r = vec![1.0; g.len()];
        residual(&g, &u, &f, &mut r);
        assert!(norm(&r) < 1e-14);
    }

    #[test]
    fn remove_mean_zeroes_mean() {
        let mut f: Vec<f64> = (0..64).map(|i| i as f64).collect();
        remove_mean(&mut f);
        assert!(f.iter().sum::<f64>().abs() < 1e-9);
    }
}
