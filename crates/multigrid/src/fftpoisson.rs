//! FFT-based periodic Poisson reference solver.
//!
//! In reciprocal space `∇²V = −4πρ` becomes `−G²·V(G) = −4π·ρ(G)`, so
//! `V(G) = 4π·ρ(G)/G²` with the `G = 0` (uniform-background) component set to
//! zero — the standard jellium-compensated convention for charged periodic
//! systems. Spectral accuracy makes it the verification oracle for the
//! multigrid solver, and it doubles as the in-domain Hartree path of the
//! plane-wave solver in `mqmd-dft`.

use mqmd_fft::freq::g_norm_sqr;
use mqmd_fft::Fft3d;
use mqmd_grid::UniformGrid3;
use mqmd_util::workspace::Workspace;
use mqmd_util::Complex64;

/// A planned FFT Poisson solver bound to one grid.
pub struct FftPoisson {
    grid: UniformGrid3,
    fft: Fft3d,
}

impl FftPoisson {
    /// Plans a solver for the given grid.
    pub fn new(grid: UniformGrid3) -> Self {
        let (nx, ny, nz) = grid.dims();
        Self {
            grid,
            fft: Fft3d::new(nx, ny, nz),
        }
    }

    /// The grid this solver is bound to.
    pub fn grid(&self) -> &UniformGrid3 {
        &self.grid
    }

    /// Solves `∇²V = −4πρ` for the Hartree potential `V` (zero mean).
    pub fn hartree(&self, rho: &[f64]) -> Vec<f64> {
        let mut v = vec![0.0; rho.len()];
        let ws = Workspace::new();
        self.hartree_into(rho, &mut v, &ws);
        v
    }

    /// Allocation-free form of [`Self::hartree`]: writes the potential into
    /// `out`, borrowing the complex FFT field from `ws`.
    pub fn hartree_into(&self, rho: &[f64], out: &mut [f64], ws: &Workspace) {
        let _span = mqmd_util::trace::span("poisson");
        assert_eq!(rho.len(), self.grid.len());
        assert_eq!(out.len(), self.grid.len());
        let mut data = ws.borrow_c64(self.grid.len());
        for (z, &x) in data.iter_mut().zip(rho) {
            *z = Complex64::from_re(x);
        }
        self.fft.forward_with(&mut data, ws);
        self.apply_greens_function(&mut data);
        self.fft.inverse_with(&mut data, ws);
        for (o, z) in out.iter_mut().zip(data.iter()) {
            *o = z.re;
        }
    }

    /// Multiplies by the periodic Coulomb Green's function `4π/G²` in place
    /// (`G = 0` zeroed).
    pub fn apply_greens_function(&self, data: &mut [Complex64]) {
        let (nx, ny, nz) = self.grid.dims();
        let lens = self.grid.lengths();
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    let idx = self.fft.index(ix, iy, iz);
                    let g2 = g_norm_sqr((ix, iy, iz), (nx, ny, nz), lens);
                    if g2 == 0.0 {
                        data[idx] = Complex64::ZERO;
                    } else {
                        data[idx] = data[idx].scale(4.0 * std::f64::consts::PI / g2);
                    }
                }
            }
        }
    }

    /// Hartree energy `½·∫ρ(r)·V_H(r) d³r` of a density.
    pub fn hartree_energy(&self, rho: &[f64]) -> f64 {
        let ws = Workspace::new();
        self.hartree_energy_with(rho, &ws)
    }

    /// Allocation-free form of [`Self::hartree_energy`]: the potential field
    /// is borrowed from `ws`.
    pub fn hartree_energy_with(&self, rho: &[f64], ws: &Workspace) -> f64 {
        let mut v = ws.borrow_f64(self.grid.len());
        self.hartree_into(rho, &mut v, ws);
        0.5 * rho.iter().zip(v.iter()).map(|(r, vh)| r * vh).sum::<f64>() * self.grid.dv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn single_mode_analytic() {
        // ρ = cos(Gx) → V = (4π/G²)·cos(Gx).
        let l = 7.0;
        let g = UniformGrid3::cubic(16, l);
        let gx = TAU / l;
        let rho = g.sample(|r| (gx * r.x).cos());
        let solver = FftPoisson::new(g.clone());
        let v = solver.hartree(&rho);
        let scale = 4.0 * std::f64::consts::PI / (gx * gx);
        let expect = g.sample(|r| scale * (gx * r.x).cos());
        for (a, b) in v.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn solution_satisfies_poisson_spectrally() {
        let g = UniformGrid3::cubic(16, 5.0);
        let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(3);
        let mut rho: Vec<f64> = (0..g.len()).map(|_| rng.normal()).collect();
        // Zero-mean (jellium) density.
        crate::stencil::remove_mean(&mut rho);
        let solver = FftPoisson::new(g.clone());
        let v = solver.hartree(&rho);
        // Check in reciprocal space: −G²·V(G) = −4π·ρ(G) for all G ≠ 0.
        let fft = mqmd_fft::Fft3d::cubic(16);
        let mut vg: Vec<Complex64> = v.iter().map(|&x| Complex64::from_re(x)).collect();
        let mut rg: Vec<Complex64> = rho.iter().map(|&x| Complex64::from_re(x)).collect();
        fft.forward(&mut vg);
        fft.forward(&mut rg);
        for ix in 0..16 {
            for iy in 0..16 {
                for iz in 0..16 {
                    let g2 = g_norm_sqr((ix, iy, iz), (16, 16, 16), g.lengths());
                    if g2 == 0.0 {
                        continue;
                    }
                    let lhs = vg[fft.index(ix, iy, iz)].scale(g2);
                    let rhs = rg[fft.index(ix, iy, iz)].scale(4.0 * std::f64::consts::PI);
                    assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
                }
            }
        }
    }

    #[test]
    fn hartree_energy_positive_for_zero_mean_density() {
        // E_H = ½Σ 4π|ρ(G)|²/G² ≥ 0.
        let g = UniformGrid3::cubic(8, 4.0);
        let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(17);
        let mut rho: Vec<f64> = (0..g.len()).map(|_| rng.normal()).collect();
        crate::stencil::remove_mean(&mut rho);
        let e = FftPoisson::new(g).hartree_energy(&rho);
        assert!(e > 0.0);
    }

    #[test]
    fn output_has_zero_mean() {
        let g = UniformGrid3::cubic(8, 4.0);
        let rho = g.sample(|r| r.x * r.y * 0.1 + 1.0);
        let v = FftPoisson::new(g).hartree(&rho);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 1e-10);
    }
}
