//! Force-field abstraction and classical reference potentials.
//!
//! The QMD driver is generic over [`ForceField`]; `mqmd-dft` (conventional
//! O(N³) plane-wave DFT) and `mqmd-core` (O(N) LDC-DFT) both implement it.
//! The classical pair potentials here serve three purposes: integration
//! tests of the MD machinery with strict energy-conservation budgets, the
//! water bath dynamics of the science application, and a cheap stand-in
//! force when benchmarking pure-MD costs.

use crate::neighbor::NeighborList;
use crate::structure::AtomicSystem;
use mqmd_util::{Result, Vec3};

/// Potential energy and per-atom forces, both in atomic units.
#[derive(Clone, Debug)]
pub struct ForceResult {
    /// Potential energy (Hartree).
    pub energy: f64,
    /// Force on each atom (Hartree/Bohr).
    pub forces: Vec<Vec3>,
}

/// Anything that can produce energies and forces for an atomic system.
///
/// Implementors provide the fallible [`ForceField::try_compute`]; quantum
/// backends propagate SCF/eigensolver failures through it so the MD loop
/// can checkpoint-recover instead of crashing. The infallible
/// [`ForceField::compute`] convenience panics on failure and is fine for
/// classical potentials, which cannot fail.
pub trait ForceField {
    /// Computes the potential energy and forces for the current positions,
    /// propagating any solver failure.
    fn try_compute(&mut self, system: &AtomicSystem) -> Result<ForceResult>;

    /// Infallible convenience wrapper; panics if the force computation
    /// fails (classical potentials never do).
    fn compute(&mut self, system: &AtomicSystem) -> ForceResult {
        self.try_compute(system)
            .expect("force computation failed; use try_compute to recover")
    }
}

/// Truncated-and-shifted Lennard-Jones 12-6 pair potential.
///
/// The energy is shifted so `V(r_cut) = 0`, keeping the total energy
/// continuous as pairs cross the cutoff (forces retain the usual small
/// discontinuity of the unsmoothed truncation — the energy-conservation
/// tests budget for it).
#[derive(Clone, Copy, Debug)]
pub struct LennardJones {
    /// Well depth ε (Hartree).
    pub epsilon: f64,
    /// Zero-crossing distance σ (Bohr).
    pub sigma: f64,
    /// Cutoff radius (Bohr).
    pub cutoff: f64,
}

impl LennardJones {
    /// Pair energy at distance `r` (shifted).
    pub fn pair_energy(&self, r: f64) -> f64 {
        if r >= self.cutoff {
            return 0.0;
        }
        let v = |x: f64| {
            let s6 = (self.sigma / x).powi(6);
            4.0 * self.epsilon * (s6 * s6 - s6)
        };
        v(r) - v(self.cutoff)
    }

    /// Magnitude of `dV/dr` at distance `r` (unshifted derivative).
    pub fn pair_dvdr(&self, r: f64) -> f64 {
        if r >= self.cutoff {
            return 0.0;
        }
        let s6 = (self.sigma / r).powi(6);
        4.0 * self.epsilon * (-12.0 * s6 * s6 + 6.0 * s6) / r
    }
}

impl ForceField for LennardJones {
    fn try_compute(&mut self, system: &AtomicSystem) -> Result<ForceResult> {
        let list = NeighborList::build(system, self.cutoff);
        let mut energy = 0.0;
        let mut forces = vec![Vec3::ZERO; system.len()];
        for &(i, j) in list.pairs() {
            let (i, j) = (i as usize, j as usize);
            let d = system.displacement(i, j); // from i to j
            let r = d.norm();
            if r >= self.cutoff || r == 0.0 {
                continue;
            }
            energy += self.pair_energy(r);
            // F_j = −dV/dr · r̂(i→j); F_i = −F_j.
            let f = d * (-self.pair_dvdr(r) / r);
            forces[j] += f;
            forces[i] -= f;
        }
        Ok(ForceResult { energy, forces })
    }
}

/// Harmonic pair potential `½k(r − r₀)²` applied to *all* pairs below the
/// cutoff — a trivially smooth field used by integrator unit tests where an
/// analytic solution exists.
#[derive(Clone, Copy, Debug)]
pub struct HarmonicPair {
    /// Spring constant (Hartree/Bohr²).
    pub k: f64,
    /// Rest length (Bohr).
    pub r0: f64,
    /// Cutoff (Bohr).
    pub cutoff: f64,
}

impl ForceField for HarmonicPair {
    fn try_compute(&mut self, system: &AtomicSystem) -> Result<ForceResult> {
        let list = NeighborList::build(system, self.cutoff);
        let mut energy = 0.0;
        let mut forces = vec![Vec3::ZERO; system.len()];
        for &(i, j) in list.pairs() {
            let (i, j) = (i as usize, j as usize);
            let d = system.displacement(i, j);
            let r = d.norm();
            let x = r - self.r0;
            energy += 0.5 * self.k * x * x;
            let f = d * (-self.k * x / r);
            forces[j] += f;
            forces[i] -= f;
        }
        Ok(ForceResult { energy, forces })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqmd_util::constants::Element;

    fn dimer(r: f64) -> AtomicSystem {
        AtomicSystem::new(
            Vec3::splat(20.0),
            vec![Element::Al, Element::Al],
            vec![Vec3::splat(5.0), Vec3::new(5.0 + r, 5.0, 5.0)],
        )
    }

    #[test]
    fn lj_minimum_at_sigma_2_to_sixth() {
        let lj = LennardJones {
            epsilon: 0.01,
            sigma: 3.0,
            cutoff: 9.0,
        };
        let r_min = 3.0 * 2f64.powf(1.0 / 6.0);
        // Force vanishes at the minimum.
        assert!(lj.pair_dvdr(r_min).abs() < 1e-12);
        // Energy at the minimum is −ε + shift.
        let shift = lj.pair_energy(r_min) + lj.epsilon;
        assert!(shift.abs() < 1e-4, "cutoff shift should be tiny at 3σ");
    }

    #[test]
    fn forces_are_newtons_third_law() {
        let mut lj = LennardJones {
            epsilon: 0.01,
            sigma: 3.0,
            cutoff: 9.0,
        };
        let s = dimer(3.2);
        let out = lj.compute(&s);
        assert!((out.forces[0] + out.forces[1]).norm() < 1e-14);
    }

    #[test]
    fn force_matches_numerical_gradient() {
        let mut lj = LennardJones {
            epsilon: 0.02,
            sigma: 3.0,
            cutoff: 8.0,
        };
        let h = 1e-6;
        for r in [2.9, 3.37, 4.5, 6.0] {
            let e_plus = lj.compute(&dimer(r + h)).energy;
            let e_minus = lj.compute(&dimer(r - h)).energy;
            let f_num = -(e_plus - e_minus) / (2.0 * h);
            let f_ana = lj.compute(&dimer(r)).forces[1].x;
            assert!((f_num - f_ana).abs() < 1e-6, "r = {r}: {f_num} vs {f_ana}");
        }
    }

    #[test]
    fn repulsive_inside_attractive_outside() {
        let mut lj = LennardJones {
            epsilon: 0.01,
            sigma: 3.0,
            cutoff: 9.0,
        };
        let r_min = 3.0 * 2f64.powf(1.0 / 6.0);
        let inside = lj.compute(&dimer(r_min * 0.8));
        let outside = lj.compute(&dimer(r_min * 1.2));
        assert!(inside.forces[1].x > 0.0, "pushes atom 1 away");
        assert!(outside.forces[1].x < 0.0, "pulls atom 1 back");
    }

    #[test]
    fn energy_zero_beyond_cutoff() {
        let mut lj = LennardJones {
            epsilon: 0.01,
            sigma: 3.0,
            cutoff: 6.0,
        };
        let out = lj.compute(&dimer(6.5));
        assert_eq!(out.energy, 0.0);
        assert_eq!(out.forces[1], Vec3::ZERO);
    }

    #[test]
    fn harmonic_dimer_force() {
        let mut hp = HarmonicPair {
            k: 0.5,
            r0: 2.0,
            cutoff: 8.0,
        };
        let out = hp.compute(&dimer(3.0));
        assert!((out.energy - 0.25).abs() < 1e-12); // ½·0.5·1²
        assert!((out.forces[1].x + 0.5).abs() < 1e-12); // −k(r−r₀)
    }
}
