//! # mqmd-md
//!
//! The molecular dynamics engine underneath the QMD driver: atomic
//! structures and workload builders (the paper's SiC, CdSe and LiAl systems),
//! linked-cell neighbour lists, the velocity-Verlet integrator, thermostats,
//! and trajectory I/O with the space-filling-curve delta compression of the
//! paper's §4.4.
//!
//! Forces are abstracted behind [`forcefield::ForceField`] so the same
//! integrator runs on the classical test potential here, on the O(N³)
//! plane-wave DFT of `mqmd-dft`, and on the LDC-DFT of `mqmd-core`.

pub mod builders;
pub mod forcefield;
pub mod integrator;
pub mod io;
pub mod neighbor;
pub mod structure;
pub mod thermostat;

pub use forcefield::{ForceField, ForceResult};
pub use structure::AtomicSystem;
