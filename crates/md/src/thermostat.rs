//! Thermostats for canonical (NVT) sampling.
//!
//! The hydrogen-on-demand simulations run at fixed temperatures (300, 600,
//! 1,500 K); production QMD codes use Nosé–Hoover chains for rigorous
//! canonical sampling and Berendsen rescaling for rapid equilibration. Both
//! are provided.

use crate::structure::AtomicSystem;
use mqmd_util::constants::KB_HARTREE_PER_K;

/// A velocity-rescaling policy applied after each MD step.
pub trait Thermostat {
    /// Adjusts velocities toward the target temperature; `dt` in a.u.
    fn apply(&mut self, system: &mut AtomicSystem, dt: f64);
    /// Target temperature in Kelvin.
    fn target(&self) -> f64;
    /// Internal state for checkpointing (empty for stateless thermostats).
    fn state(&self) -> Vec<f64> {
        Vec::new()
    }
    /// Restores state captured by [`Thermostat::state`].
    fn restore(&mut self, _state: &[f64]) {}
}

/// Berendsen weak-coupling thermostat: exponential relaxation of the
/// kinetic temperature with time constant `tau`.
#[derive(Clone, Copy, Debug)]
pub struct Berendsen {
    /// Target temperature (K).
    pub t_target: f64,
    /// Relaxation time constant (a.u.).
    pub tau: f64,
}

impl Thermostat for Berendsen {
    fn apply(&mut self, system: &mut AtomicSystem, dt: f64) {
        let t_now = system.temperature();
        if t_now <= 0.0 {
            return;
        }
        let lambda = (1.0 + dt / self.tau * (self.t_target / t_now - 1.0))
            .max(0.0)
            .sqrt();
        for v in &mut system.velocities {
            *v *= lambda;
        }
    }

    fn target(&self) -> f64 {
        self.t_target
    }
}

/// Single Nosé–Hoover thermostat (one chain link) integrated with the
/// velocity-Verlet-compatible half-step scheme.
#[derive(Clone, Copy, Debug)]
pub struct NoseHoover {
    /// Target temperature (K).
    pub t_target: f64,
    /// Thermostat "mass" Q (a.u.); larger = gentler coupling.
    pub q: f64,
    /// Thermostat momentum (internal state).
    pub xi: f64,
}

impl NoseHoover {
    /// Creates a thermostat with the standard mass heuristic
    /// `Q = 3·N·k_B·T·τ²` for relaxation time `tau`.
    pub fn new(t_target: f64, n_atoms: usize, tau: f64) -> Self {
        let q = 3.0 * n_atoms as f64 * KB_HARTREE_PER_K * t_target.max(1.0) * tau * tau;
        Self {
            t_target,
            q,
            xi: 0.0,
        }
    }
}

impl Thermostat for NoseHoover {
    fn apply(&mut self, system: &mut AtomicSystem, dt: f64) {
        let n = system.len();
        if n == 0 {
            return;
        }
        let g = 3.0 * n as f64;
        let kt = KB_HARTREE_PER_K * self.t_target;
        // Half-step ξ update, full velocity scale, half-step ξ update.
        let ke = system.kinetic_energy();
        self.xi += 0.5 * dt * (2.0 * ke - g * kt) / self.q;
        let scale = (-self.xi * dt).exp();
        for v in &mut system.velocities {
            *v *= scale;
        }
        let ke2 = system.kinetic_energy();
        self.xi += 0.5 * dt * (2.0 * ke2 - g * kt) / self.q;
    }

    fn target(&self) -> f64 {
        self.t_target
    }

    fn state(&self) -> Vec<f64> {
        vec![self.xi]
    }

    fn restore(&mut self, state: &[f64]) {
        if let Some(&xi) = state.first() {
            self.xi = xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::LennardJones;
    use crate::integrator::VelocityVerlet;
    use crate::structure::AtomicSystem;
    use mqmd_util::constants::Element;
    use mqmd_util::{Vec3, Xoshiro256pp};

    fn gas(n_side: usize, spacing: f64) -> AtomicSystem {
        let n = n_side.pow(3);
        let mut positions = Vec::with_capacity(n);
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    positions.push(Vec3::new(i as f64, j as f64, k as f64) * spacing);
                }
            }
        }
        AtomicSystem::new(
            Vec3::splat(n_side as f64 * spacing),
            vec![Element::Al; n],
            positions,
        )
    }

    #[test]
    fn berendsen_relaxes_to_target() {
        let mut sys = gas(4, 7.0);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        sys.thermalize(100.0, &mut rng);
        let mut lj = LennardJones {
            epsilon: 3e-4,
            sigma: 5.0,
            cutoff: 12.0,
        };
        let mut vv = VelocityVerlet::new(20.0);
        let mut thermo = Berendsen {
            t_target: 600.0,
            tau: 400.0,
        };
        for _ in 0..300 {
            vv.step(&mut sys, &mut lj);
            thermo.apply(&mut sys, vv.dt);
        }
        let t = sys.temperature();
        assert!((t - 600.0).abs() < 120.0, "temperature {t} not near 600 K");
    }

    #[test]
    fn berendsen_cools_hot_system() {
        let mut sys = gas(3, 8.0);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        sys.thermalize(2000.0, &mut rng);
        let mut thermo = Berendsen {
            t_target: 300.0,
            tau: 100.0,
        };
        // Pure rescaling (no dynamics): converges geometrically.
        for _ in 0..200 {
            thermo.apply(&mut sys, 10.0);
        }
        assert!((sys.temperature() - 300.0).abs() < 5.0);
    }

    #[test]
    fn nose_hoover_mean_temperature() {
        let mut sys = gas(4, 7.0);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        sys.thermalize(900.0, &mut rng);
        let mut lj = LennardJones {
            epsilon: 3e-4,
            sigma: 5.0,
            cutoff: 12.0,
        };
        let mut vv = VelocityVerlet::new(20.0);
        let mut thermo = NoseHoover::new(600.0, sys.len(), 500.0);
        let mut temps = Vec::new();
        for step in 0..600 {
            vv.step(&mut sys, &mut lj);
            thermo.apply(&mut sys, vv.dt);
            if step >= 200 {
                temps.push(sys.temperature());
            }
        }
        let mean = mqmd_util::stats::mean(&temps);
        assert!((mean - 600.0).abs() < 100.0, "NH mean temperature {mean}");
    }

    #[test]
    fn nose_hoover_xi_responds_to_temperature_error() {
        let mut sys = gas(3, 8.0);
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        sys.thermalize(1200.0, &mut rng);
        let mut thermo = NoseHoover::new(300.0, sys.len(), 200.0);
        thermo.apply(&mut sys, 10.0);
        assert!(
            thermo.xi > 0.0,
            "hot system must push ξ positive (friction)"
        );
    }
}
