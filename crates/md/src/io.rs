//! Trajectory I/O with space-filling-curve delta compression.
//!
//! The paper (§4.4) reduces atomic-coordinate I/O with a
//! "spacefilling-curve-based adaptive data compression scheme" (ref [65]):
//! positions are quantised onto a fine grid, atoms are ordered along a
//! space-filling curve, and the curve indices are delta-encoded — spatially
//! adjacent atoms have nearby curve indices, so the deltas are small and
//! varint-encode compactly. This module implements exactly that pipeline
//! (Hilbert curve + LEB128 varints) plus a simple binary trajectory
//! container.

use crate::forcefield::ForceResult;
use crate::structure::AtomicSystem;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mqmd_grid::hilbert::{hilbert_decode, hilbert_encode};
use mqmd_util::constants::Element;
use mqmd_util::{MqmdError, Result, Vec3};
use std::path::{Path, PathBuf};

/// Maximum quantisation bits per axis (3·21 = 63 curve bits fit in u64).
pub const MAX_BITS: u32 = 21;

/// LEB128 unsigned varint encoding.
pub fn write_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// LEB128 unsigned varint decoding.
pub fn read_varint(buf: &mut impl Buf) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        if !buf.has_remaining() {
            return Err(MqmdError::Io("truncated varint".into()));
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(MqmdError::Io("varint overflow".into()));
        }
    }
}

/// A compressed snapshot of atomic positions.
#[derive(Clone, Debug)]
pub struct CompressedFrame {
    /// Quantisation bits per axis.
    pub bits: u32,
    /// Cell lengths at capture time.
    pub cell: Vec3,
    /// Number of atoms.
    pub n_atoms: usize,
    /// Payload: sorted Hilbert-index deltas and original atom ids.
    pub payload: Bytes,
}

impl CompressedFrame {
    /// Compresses positions with `bits` bits per axis (quantisation error
    /// ≤ cell/2^bits per component).
    pub fn compress(system: &AtomicSystem, bits: u32) -> Self {
        assert!((1..=MAX_BITS).contains(&bits));
        let n_side = 1u64 << bits;
        let cell = system.cell;
        let mut keyed: Vec<(u64, u32)> = system
            .positions
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let w = r.wrap(cell);
                let qx = ((w.x / cell.x * n_side as f64) as u64).min(n_side - 1) as u32;
                let qy = ((w.y / cell.y * n_side as f64) as u64).min(n_side - 1) as u32;
                let qz = ((w.z / cell.z * n_side as f64) as u64).min(n_side - 1) as u32;
                (hilbert_encode(qx, qy, qz, bits), i as u32)
            })
            .collect();
        keyed.sort_unstable();

        let mut payload = BytesMut::new();
        let mut prev = 0u64;
        for &(h, id) in &keyed {
            write_varint(&mut payload, h - prev);
            write_varint(&mut payload, id as u64);
            prev = h;
        }
        Self {
            bits,
            cell,
            n_atoms: keyed.len(),
            payload: payload.freeze(),
        }
    }

    /// Decompresses to positions in original atom order (cell-centre of each
    /// quantisation voxel).
    pub fn decompress(&self) -> Result<Vec<Vec3>> {
        let n_side = 1u64 << self.bits;
        let mut out = vec![Vec3::ZERO; self.n_atoms];
        let mut seen = vec![false; self.n_atoms];
        let mut buf = self.payload.clone();
        let mut h = 0u64;
        for _ in 0..self.n_atoms {
            h += read_varint(&mut buf)?;
            let id = read_varint(&mut buf)? as usize;
            if id >= self.n_atoms || seen[id] {
                return Err(MqmdError::Io(format!("corrupt frame: bad atom id {id}")));
            }
            seen[id] = true;
            let (qx, qy, qz) = hilbert_decode(h, self.bits);
            out[id] = Vec3::new(
                (qx as f64 + 0.5) / n_side as f64 * self.cell.x,
                (qy as f64 + 0.5) / n_side as f64 * self.cell.y,
                (qz as f64 + 0.5) / n_side as f64 * self.cell.z,
            );
        }
        Ok(out)
    }

    /// Compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Raw size the frame would occupy as 3 × f64 per atom.
    pub fn raw_bytes(&self) -> usize {
        self.n_atoms * 24
    }

    /// Compression ratio raw/compressed (> 1 is a win).
    pub fn ratio(&self) -> f64 {
        self.raw_bytes() as f64 / self.compressed_bytes().max(1) as f64
    }

    /// Worst-case quantisation error per component (half a voxel diagonal).
    pub fn max_quantisation_error(&self) -> f64 {
        let n_side = (1u64 << self.bits) as f64;
        let hx = self.cell.x / n_side;
        let hy = self.cell.y / n_side;
        let hz = self.cell.z / n_side;
        0.5 * (hx * hx + hy * hy + hz * hz).sqrt()
    }
}

/// Magic bytes of the trajectory container format.
const TRAJ_MAGIC: &[u8; 8] = b"MQMDTRJ1";

/// A multi-frame compressed trajectory container.
///
/// Layout: magic, bits, cell, then per frame `(step, n_atoms, payload_len,
/// payload)` — the aggregated stream a §4.4 collective-I/O master would
/// write.
#[derive(Clone, Debug, Default)]
pub struct Trajectory {
    /// Quantisation bits shared by all frames.
    pub bits: u32,
    /// Frames: `(MD step, compressed snapshot)`.
    pub frames: Vec<(u64, CompressedFrame)>,
}

impl Trajectory {
    /// Creates an empty trajectory with the given quantisation.
    pub fn new(bits: u32) -> Self {
        assert!((1..=MAX_BITS).contains(&bits));
        Self {
            bits,
            frames: Vec::new(),
        }
    }

    /// Appends a snapshot of the system at `step`.
    pub fn push(&mut self, step: u64, system: &AtomicSystem) {
        self.frames
            .push((step, CompressedFrame::compress(system, self.bits)));
    }

    /// Serialises the container to bytes.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(TRAJ_MAGIC);
        write_varint(&mut buf, self.bits as u64);
        write_varint(&mut buf, self.frames.len() as u64);
        for (step, frame) in &self.frames {
            write_varint(&mut buf, *step);
            buf.put_f64(frame.cell.x);
            buf.put_f64(frame.cell.y);
            buf.put_f64(frame.cell.z);
            write_varint(&mut buf, frame.n_atoms as u64);
            write_varint(&mut buf, frame.payload.len() as u64);
            buf.put_slice(&frame.payload);
        }
        buf.freeze()
    }

    /// Deserialises a container.
    pub fn from_bytes(mut data: Bytes) -> Result<Self> {
        if data.len() < TRAJ_MAGIC.len() || &data[..TRAJ_MAGIC.len()] != TRAJ_MAGIC {
            return Err(MqmdError::Io("not a MQMD trajectory (bad magic)".into()));
        }
        data.advance(TRAJ_MAGIC.len());
        let bits = read_varint(&mut data)? as u32;
        if bits == 0 || bits > MAX_BITS {
            return Err(MqmdError::Io(format!("corrupt trajectory: bits = {bits}")));
        }
        let n_frames = read_varint(&mut data)? as usize;
        let mut frames = Vec::with_capacity(n_frames.min(1 << 20));
        for _ in 0..n_frames {
            let step = read_varint(&mut data)?;
            if data.remaining() < 24 {
                return Err(MqmdError::Io("truncated trajectory frame header".into()));
            }
            let cell = Vec3::new(data.get_f64(), data.get_f64(), data.get_f64());
            let n_atoms = read_varint(&mut data)? as usize;
            let len = read_varint(&mut data)? as usize;
            if data.remaining() < len {
                return Err(MqmdError::Io("truncated trajectory payload".into()));
            }
            let payload = data.split_to(len);
            frames.push((
                step,
                CompressedFrame {
                    bits,
                    cell,
                    n_atoms,
                    payload,
                },
            ));
        }
        Ok(Self { bits, frames })
    }

    /// Writes the container to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a container from a file.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let data = std::fs::read(path)?;
        Self::from_bytes(Bytes::from(data))
    }

    /// Total compressed bytes across frames (excluding headers).
    pub fn compressed_bytes(&self) -> usize {
        self.frames.iter().map(|(_, f)| f.compressed_bytes()).sum()
    }

    /// Overall compression ratio versus raw 3×f64 coordinates.
    pub fn ratio(&self) -> f64 {
        let raw: usize = self.frames.iter().map(|(_, f)| f.raw_bytes()).sum();
        raw as f64 / self.compressed_bytes().max(1) as f64
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restart
// ---------------------------------------------------------------------------

/// Magic bytes of the checkpoint format.
const CKP_MAGIC: &[u8; 8] = b"MQMDCKP1";

/// FNV-1a 64-bit hash — the checkpoint integrity checksum. Not
/// cryptographic; it detects the torn writes and bit flips a crashed or
/// faulty node leaves behind.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Full restartable state of a QMD run at a step boundary: atoms,
/// velocities, the integrator's cached end-of-step forces, thermostat
/// state, and an opaque solver payload (the LDC solver stores its
/// per-domain bands and densities there) — everything needed for a resumed
/// run to replay bitwise. Serialised with a trailing [`fnv1a64`] checksum
/// so corruption is rejected at load instead of propagating into physics.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// MD step the checkpoint was taken after.
    pub step: u64,
    /// Atomic state (cell, species, positions, velocities).
    pub system: AtomicSystem,
    /// The integrator's cached forces, if a step has completed.
    pub cached_forces: Option<ForceResult>,
    /// Opaque thermostat state ([`crate::thermostat::Thermostat::state`]).
    pub thermostat: Vec<f64>,
    /// Opaque solver payload (e.g. LDC per-domain wave functions).
    pub solver: Vec<u8>,
}

impl Checkpoint {
    /// Serialises with the checksum trailer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(CKP_MAGIC);
        write_varint(&mut buf, self.step);
        buf.put_f64(self.system.cell.x);
        buf.put_f64(self.system.cell.y);
        buf.put_f64(self.system.cell.z);
        let n = self.system.len();
        write_varint(&mut buf, n as u64);
        for &e in &self.system.species {
            write_varint(&mut buf, e.atomic_number() as u64);
        }
        for r in &self.system.positions {
            buf.put_f64(r.x);
            buf.put_f64(r.y);
            buf.put_f64(r.z);
        }
        for v in &self.system.velocities {
            buf.put_f64(v.x);
            buf.put_f64(v.y);
            buf.put_f64(v.z);
        }
        match &self.cached_forces {
            Some(f) => {
                buf.put_u8(1);
                buf.put_f64(f.energy);
                for g in &f.forces {
                    buf.put_f64(g.x);
                    buf.put_f64(g.y);
                    buf.put_f64(g.z);
                }
            }
            None => buf.put_u8(0),
        }
        write_varint(&mut buf, self.thermostat.len() as u64);
        for &x in &self.thermostat {
            buf.put_f64(x);
        }
        write_varint(&mut buf, self.solver.len() as u64);
        buf.put_slice(&self.solver);
        let checksum = fnv1a64(&buf);
        buf.put_u64(checksum);
        buf.freeze()
    }

    /// Deserialises, verifying magic and checksum.
    pub fn from_bytes(data: Bytes) -> Result<Self> {
        if data.len() < CKP_MAGIC.len() + 8 || &data[..CKP_MAGIC.len()] != CKP_MAGIC {
            return Err(MqmdError::Io("not a MQMD checkpoint (bad magic)".into()));
        }
        let body_len = data.len() - 8;
        let mut trailer = [0u8; 8];
        trailer.copy_from_slice(&data[body_len..]);
        let stored = u64::from_be_bytes(trailer);
        if fnv1a64(&data[..body_len]) != stored {
            return Err(MqmdError::Io(
                "checkpoint checksum mismatch (corrupt or torn write)".into(),
            ));
        }
        let mut buf = data;
        let mut buf = buf.split_to(body_len);
        buf.advance(CKP_MAGIC.len());
        let step = read_varint(&mut buf)?;
        let need = |buf: &Bytes, n: usize| -> Result<()> {
            if buf.remaining() < n {
                Err(MqmdError::Io("truncated checkpoint".into()))
            } else {
                Ok(())
            }
        };
        need(&buf, 24)?;
        let cell = Vec3::new(buf.get_f64(), buf.get_f64(), buf.get_f64());
        let n = read_varint(&mut buf)? as usize;
        if n > (1 << 32) {
            return Err(MqmdError::Io(format!("implausible atom count {n}")));
        }
        let mut species = Vec::with_capacity(n);
        for _ in 0..n {
            let z = read_varint(&mut buf)? as u32;
            let e = Element::ALL
                .into_iter()
                .find(|e| e.atomic_number() == z)
                .ok_or_else(|| MqmdError::Io(format!("unknown atomic number {z}")))?;
            species.push(e);
        }
        let read_vec3s = |buf: &mut Bytes, n: usize| -> Result<Vec<Vec3>> {
            need(buf, 24 * n)?;
            Ok((0..n)
                .map(|_| Vec3::new(buf.get_f64(), buf.get_f64(), buf.get_f64()))
                .collect())
        };
        let positions = read_vec3s(&mut buf, n)?;
        let velocities = read_vec3s(&mut buf, n)?;
        need(&buf, 1)?;
        let cached_forces = match buf.get_u8() {
            0 => None,
            1 => {
                need(&buf, 8 + 24 * n)?;
                let energy = buf.get_f64();
                let forces = read_vec3s(&mut buf, n)?;
                Some(ForceResult { energy, forces })
            }
            other => {
                return Err(MqmdError::Io(format!("bad force-cache tag {other}")));
            }
        };
        let n_thermo = read_varint(&mut buf)? as usize;
        need(&buf, 8 * n_thermo)?;
        let thermostat = (0..n_thermo).map(|_| buf.get_f64()).collect();
        let n_solver = read_varint(&mut buf)? as usize;
        need(&buf, n_solver)?;
        let solver = buf.split_to(n_solver).to_vec();
        let mut system = AtomicSystem::new(cell, species, positions);
        system.velocities = velocities;
        Ok(Self {
            step,
            system,
            cached_forces,
            thermostat,
            solver,
        })
    }

    /// Writes atomically and durably: serialise to `<path>.tmp` in the
    /// same directory, fsync the file, rename over `path`, then fsync the
    /// parent directory — a crash mid-write never clobbers the previous
    /// good checkpoint, and a crash right after `save` returns cannot
    /// lose the new directory entry (the rename itself is only on disk
    /// once the directory's metadata is).
    pub fn save(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("tmp");
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            sync_dir(dir)?;
        }
        Ok(())
    }

    /// Loads and verifies a checkpoint file.
    pub fn load(path: &Path) -> Result<Self> {
        let data = std::fs::read(path)?;
        Self::from_bytes(Bytes::from(data))
    }
}

/// Fsyncs a directory so a just-renamed entry survives power loss. An
/// empty parent (bare relative filename) means the current directory.
fn sync_dir(dir: &Path) -> Result<()> {
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    #[cfg(unix)]
    std::fs::File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir; // directory fsync is not portable off unix
    Ok(())
}

/// Keeps the last `keep` checkpoints in a directory and rolls back past
/// corrupt files on load — the production pattern where a bad node can
/// leave its most recent checkpoint torn.
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir` retaining the
    /// newest `keep` checkpoints.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            keep: keep.max(1),
        })
    }

    fn path_for(&self, step: u64) -> PathBuf {
        self.dir.join(format!("ckp_{step:012}.mqmdckp"))
    }

    /// Checkpoint files currently in the store, oldest first.
    pub fn list(&self) -> Result<Vec<PathBuf>> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "mqmdckp"))
            .collect();
        files.sort();
        Ok(files)
    }

    /// Saves a checkpoint (atomic write) and prunes beyond the retention
    /// budget. Only checkpoints that pass their checksum count toward the
    /// budget: a corrupt file sitting between two good ones can never push
    /// the newest valid checkpoint out of retention. Files older than the
    /// `keep`-th newest *valid* checkpoint are deleted, corrupt or not.
    pub fn save(&self, ckp: &Checkpoint) -> Result<PathBuf> {
        let path = self.path_for(ckp.step);
        ckp.save(&path)?;
        let files = self.list()?;
        let mut valid_seen = 0usize;
        let mut cut = 0usize; // delete everything before this index
        for (i, p) in files.iter().enumerate().rev() {
            if Checkpoint::load(p).is_ok() {
                valid_seen += 1;
                if valid_seen == self.keep {
                    cut = i;
                    break;
                }
            }
        }
        for old in &files[..cut] {
            std::fs::remove_file(old).ok();
        }
        Ok(path)
    }

    /// Loads the newest checkpoint that passes its checksum, skipping (and
    /// reporting via the event stream) any corrupt files on the way back.
    /// `Ok(None)` when no valid checkpoint exists.
    pub fn load_latest(&self) -> Result<Option<Checkpoint>> {
        for path in self.list()?.into_iter().rev() {
            match Checkpoint::load(&path) {
                Ok(ckp) => return Ok(Some(ckp)),
                Err(e) => {
                    mqmd_util::events::emit(mqmd_util::events::Event::WatchdogTrip {
                        watchdog: "checkpoint_corrupt",
                        message: format!("skipping {}: {e}", path.display()),
                        value: 1.0,
                        bound: 0.0,
                    });
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::sic_supercell;
    use mqmd_util::Xoshiro256pp;

    #[test]
    fn varint_round_trip() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut buf = BytesMut::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for &v in &values {
            assert_eq!(read_varint(&mut bytes).unwrap(), v);
        }
    }

    #[test]
    fn varint_small_values_are_one_byte() {
        let mut buf = BytesMut::new();
        write_varint(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        write_varint(&mut buf, 200);
        assert_eq!(buf.len(), 3); // 200 needs two bytes
    }

    #[test]
    fn compression_round_trip_within_quantisation_error() {
        let s = sic_supercell((3, 3, 3));
        let frame = CompressedFrame::compress(&s, 16);
        let back = frame.decompress().unwrap();
        assert_eq!(back.len(), s.len());
        let tol = frame.max_quantisation_error();
        for (a, b) in back.iter().zip(&s.positions) {
            assert!((*a - *b).min_image(s.cell).norm() <= tol * 1.0001);
        }
    }

    #[test]
    fn crystal_compresses_well() {
        // Ordered structures put consecutive curve indices close together:
        // the paper's premise. Expect clearly better than raw f64 storage.
        let s = sic_supercell((4, 4, 4));
        let frame = CompressedFrame::compress(&s, 12);
        assert!(frame.ratio() > 3.0, "ratio {}", frame.ratio());
    }

    #[test]
    fn more_bits_bigger_payload_smaller_error() {
        let s = sic_supercell((3, 3, 3));
        let lo = CompressedFrame::compress(&s, 8);
        let hi = CompressedFrame::compress(&s, 16);
        assert!(hi.compressed_bytes() > lo.compressed_bytes());
        assert!(hi.max_quantisation_error() < lo.max_quantisation_error());
    }

    #[test]
    fn random_gas_still_round_trips() {
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let n = 500;
        let cell = Vec3::splat(30.0);
        let positions: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.uniform_in(0.0, 30.0),
                    rng.uniform_in(0.0, 30.0),
                    rng.uniform_in(0.0, 30.0),
                )
            })
            .collect();
        let s = AtomicSystem::new(cell, vec![mqmd_util::constants::Element::O; n], positions);
        let frame = CompressedFrame::compress(&s, 14);
        let back = frame.decompress().unwrap();
        let tol = frame.max_quantisation_error();
        for (a, b) in back.iter().zip(&s.positions) {
            assert!((*a - *b).min_image(cell).norm() <= tol * 1.0001);
        }
    }

    #[test]
    fn trajectory_round_trip_through_bytes_and_file() {
        let mut sys = sic_supercell((2, 2, 2));
        let mut traj = Trajectory::new(14);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for step in 0..5u64 {
            crate::builders::amorphize(&mut sys, 0.05, &mut rng);
            traj.push(step * 10, &sys);
        }
        let bytes = traj.to_bytes();
        let back = Trajectory::from_bytes(bytes).unwrap();
        assert_eq!(back.frames.len(), 5);
        assert_eq!(back.frames[3].0, 30);
        let tol = back.frames[4].1.max_quantisation_error() * 1.0001;
        let decoded = back.frames[4].1.decompress().unwrap();
        for (a, b) in decoded.iter().zip(&sys.positions) {
            assert!((*a - *b).min_image(sys.cell).norm() <= tol);
        }
        // File round trip.
        let dir = std::env::temp_dir().join("mqmd_traj_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.mqmdtrj");
        traj.save(&path).unwrap();
        let loaded = Trajectory::load(&path).unwrap();
        assert_eq!(loaded.frames.len(), 5);
        assert!(loaded.ratio() > 1.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trajectory_rejects_garbage() {
        assert!(Trajectory::from_bytes(Bytes::from_static(b"not a trajectory")).is_err());
        assert!(Trajectory::from_bytes(Bytes::from_static(b"MQMDTRJ1\xff\xff")).is_err());
    }

    #[test]
    fn corrupt_payload_detected() {
        let s = sic_supercell((1, 1, 1));
        let mut frame = CompressedFrame::compress(&s, 10);
        frame.payload = Bytes::from_static(&[0xff, 0xff]);
        assert!(frame.decompress().is_err());
    }
}
