//! Atomic system container.

use mqmd_util::constants::{Element, KB_HARTREE_PER_K};
use mqmd_util::{Vec3, Xoshiro256pp};

/// A periodic collection of atoms in an orthorhombic cell, in Hartree atomic
/// units (positions in Bohr, velocities in Bohr per a.u. of time, masses in
/// electron masses).
#[derive(Clone, Debug)]
pub struct AtomicSystem {
    /// Cell side lengths (Bohr).
    pub cell: Vec3,
    /// Chemical species per atom.
    pub species: Vec<Element>,
    /// Wrapped positions (Bohr).
    pub positions: Vec<Vec3>,
    /// Velocities (Bohr / a.u. time).
    pub velocities: Vec<Vec3>,
}

impl AtomicSystem {
    /// Creates a system with zero velocities, wrapping positions into the
    /// cell.
    pub fn new(cell: Vec3, species: Vec<Element>, positions: Vec<Vec3>) -> Self {
        assert_eq!(
            species.len(),
            positions.len(),
            "species/position length mismatch"
        );
        assert!(cell.x > 0.0 && cell.y > 0.0 && cell.z > 0.0);
        let positions = positions
            .into_iter()
            .map(|r| r.wrap(cell))
            .collect::<Vec<_>>();
        let n = species.len();
        Self {
            cell,
            species,
            positions,
            velocities: vec![Vec3::ZERO; n],
        }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// True when the system has no atoms.
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Mass of atom `i` in electron masses.
    pub fn mass(&self, i: usize) -> f64 {
        self.species[i].mass_au()
    }

    /// Total number of valence electrons (the DFT electron count).
    pub fn valence_electrons(&self) -> usize {
        self.species.iter().map(|e| e.valence() as usize).sum()
    }

    /// Cell volume (Bohr³).
    pub fn volume(&self) -> f64 {
        self.cell.x * self.cell.y * self.cell.z
    }

    /// Minimum-image displacement from atom `i` to atom `j`.
    pub fn displacement(&self, i: usize, j: usize) -> Vec3 {
        (self.positions[j] - self.positions[i]).min_image(self.cell)
    }

    /// Minimum-image distance between atoms `i` and `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.displacement(i, j).norm()
    }

    /// Kinetic energy `Σ ½·m·v²` (Hartree).
    pub fn kinetic_energy(&self) -> f64 {
        self.velocities
            .iter()
            .enumerate()
            .map(|(i, v)| 0.5 * self.mass(i) * v.norm_sqr())
            .sum()
    }

    /// Instantaneous temperature from the equipartition theorem,
    /// `T = 2·E_kin / (3·N·k_B)` (Kelvin).
    pub fn temperature(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.kinetic_energy() / (3.0 * self.len() as f64 * KB_HARTREE_PER_K)
    }

    /// Draws Maxwell–Boltzmann velocities at temperature `t_kelvin`, removes
    /// centre-of-mass drift, and rescales to hit the target exactly.
    pub fn thermalize(&mut self, t_kelvin: f64, rng: &mut Xoshiro256pp) {
        assert!(t_kelvin >= 0.0);
        if t_kelvin == 0.0 || self.is_empty() {
            self.velocities.iter_mut().for_each(|v| *v = Vec3::ZERO);
            return;
        }
        for i in 0..self.len() {
            let sd = (KB_HARTREE_PER_K * t_kelvin / self.mass(i)).sqrt();
            self.velocities[i] = Vec3::new(
                rng.normal_scaled(0.0, sd),
                rng.normal_scaled(0.0, sd),
                rng.normal_scaled(0.0, sd),
            );
        }
        self.remove_drift();
        let t_now = self.temperature();
        if t_now > 0.0 {
            let s = (t_kelvin / t_now).sqrt();
            self.velocities.iter_mut().for_each(|v| *v *= s);
        }
    }

    /// Removes centre-of-mass momentum.
    pub fn remove_drift(&mut self) {
        let mut p = Vec3::ZERO;
        let mut m_tot = 0.0;
        for i in 0..self.len() {
            p += self.velocities[i] * self.mass(i);
            m_tot += self.mass(i);
        }
        let v_com = p / m_tot;
        self.velocities.iter_mut().for_each(|v| *v -= v_com);
    }

    /// Counts atoms of one element.
    pub fn count(&self, e: Element) -> usize {
        self.species.iter().filter(|&&s| s == e).count()
    }

    /// Merges another system into this one (same cell required).
    pub fn extend_with(&mut self, other: &AtomicSystem) {
        assert!((self.cell - other.cell).norm() < 1e-12, "cells must match");
        self.species.extend_from_slice(&other.species);
        self.positions.extend_from_slice(&other.positions);
        self.velocities.extend_from_slice(&other.velocities);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_atom() -> AtomicSystem {
        AtomicSystem::new(
            Vec3::splat(10.0),
            vec![Element::Si, Element::C],
            vec![Vec3::splat(1.0), Vec3::new(9.5, 1.0, 1.0)],
        )
    }

    #[test]
    fn construction_wraps_positions() {
        let s = AtomicSystem::new(
            Vec3::splat(5.0),
            vec![Element::H],
            vec![Vec3::new(6.0, -1.0, 2.5)],
        );
        assert!((s.positions[0] - Vec3::new(1.0, 4.0, 2.5)).norm() < 1e-12);
    }

    #[test]
    fn min_image_distance() {
        let s = two_atom();
        // 1.0 → 9.5 across the boundary is 1.5, not 8.5.
        assert!((s.distance(0, 1) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn valence_electron_count() {
        let s = two_atom();
        assert_eq!(s.valence_electrons(), 8); // Si(4) + C(4)
    }

    #[test]
    fn thermalize_hits_target_temperature() {
        let mut s = AtomicSystem::new(
            Vec3::splat(20.0),
            vec![Element::Al; 64],
            (0..64)
                .map(|i| Vec3::new((i % 4) as f64, ((i / 4) % 4) as f64, (i / 16) as f64) * 4.0)
                .collect(),
        );
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        s.thermalize(600.0, &mut rng);
        assert!((s.temperature() - 600.0).abs() < 1e-9);
        // No centre-of-mass drift.
        let p: Vec3 = (0..s.len()).map(|i| s.velocities[i] * s.mass(i)).sum();
        assert!(p.norm() < 1e-9);
    }

    #[test]
    fn zero_temperature_freezes() {
        let mut s = two_atom();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        s.thermalize(300.0, &mut rng);
        assert!(s.temperature() > 0.0);
        s.thermalize(0.0, &mut rng);
        assert_eq!(s.kinetic_energy(), 0.0);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = two_atom();
        let b = two_atom();
        a.extend_with(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.count(Element::Si), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_cells_rejected() {
        let mut a = two_atom();
        let b = AtomicSystem::new(Vec3::splat(11.0), vec![Element::H], vec![Vec3::ZERO]);
        a.extend_with(&b);
    }
}
