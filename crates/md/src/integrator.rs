//! Velocity-Verlet integration.
//!
//! The QMD production runs of the paper advance 16,661 atoms for 21,140
//! steps of 0.242 fs with forces recomputed from DFT every step; the
//! integrator itself is the standard velocity-Verlet scheme implemented
//! here. It is symplectic and time-reversible, which the tests check
//! directly along with energy conservation on classical potentials.

use crate::forcefield::{ForceField, ForceResult};
use crate::structure::AtomicSystem;
use mqmd_util::Result;

/// Velocity-Verlet propagator owning the force cache between steps.
pub struct VelocityVerlet {
    /// Time step in a.u. of time (0.242 fs ≈ 10 a.u. in the paper).
    pub dt: f64,
    cached: Option<ForceResult>,
}

impl VelocityVerlet {
    /// Creates an integrator with the given time step (a.u.).
    pub fn new(dt: f64) -> Self {
        assert!(dt > 0.0);
        Self { dt, cached: None }
    }

    /// Invalidates the force cache (call after externally modifying
    /// positions).
    pub fn reset(&mut self) {
        self.cached = None;
    }

    /// The cached end-of-step forces, if any (checkpointing reads these so
    /// a resumed run replays bitwise instead of recomputing the half-kick).
    pub fn cached_forces(&self) -> Option<&ForceResult> {
        self.cached.as_ref()
    }

    /// Preloads the force cache (checkpoint restore).
    pub fn preload_forces(&mut self, forces: ForceResult) {
        self.cached = Some(forces);
    }

    /// Advances one step; returns the potential energy after the step.
    /// Panics if the force field fails — quantum backends should use
    /// [`VelocityVerlet::try_step`] and recover.
    pub fn step<F: ForceField>(&mut self, system: &mut AtomicSystem, field: &mut F) -> f64 {
        self.try_step(system, field)
            .expect("force field failed inside the MD step; use try_step to recover")
    }

    /// Fallible form of [`VelocityVerlet::step`]. On error the force cache
    /// is left empty and the system may sit mid-step (positions advanced,
    /// second half-kick missing) — callers recover by restoring a
    /// checkpointed state, not by re-stepping.
    pub fn try_step<F: ForceField>(
        &mut self,
        system: &mut AtomicSystem,
        field: &mut F,
    ) -> Result<f64> {
        let n = system.len();
        let dt = self.dt;
        let forces_old = match self.cached.take() {
            Some(f) => f,
            None => field.try_compute(system)?,
        };

        // v(t+dt/2), r(t+dt)
        for i in 0..n {
            let a = forces_old.forces[i] / system.mass(i);
            system.velocities[i] += a * (0.5 * dt);
            system.positions[i] =
                (system.positions[i] + system.velocities[i] * dt).wrap(system.cell);
        }
        // v(t+dt)
        let forces_new = field.try_compute(system)?;
        for i in 0..n {
            let a = forces_new.forces[i] / system.mass(i);
            system.velocities[i] += a * (0.5 * dt);
        }
        let e_pot = forces_new.energy;
        self.cached = Some(forces_new);
        Ok(e_pot)
    }

    /// Runs `steps` steps, returning the per-step total energies
    /// (kinetic + potential) for conservation monitoring.
    pub fn run<F: ForceField>(
        &mut self,
        system: &mut AtomicSystem,
        field: &mut F,
        steps: usize,
    ) -> Vec<f64> {
        let mut energies = Vec::with_capacity(steps);
        for _ in 0..steps {
            let e_pot = self.step(system, field);
            energies.push(e_pot + system.kinetic_energy());
        }
        energies
    }
}

/// Flips all velocities — composing `run(n); reverse; run(n)` must return to
/// the start for a time-reversible integrator.
pub fn reverse_velocities(system: &mut AtomicSystem) {
    for v in &mut system.velocities {
        *v = -*v;
    }
}

/// Maximum relative total-energy drift over a trajectory, the conservation
/// metric quoted by QMD verification studies.
pub fn energy_drift(energies: &[f64]) -> f64 {
    if energies.len() < 2 {
        return 0.0;
    }
    let e0 = energies[0];
    let scale = e0.abs().max(1e-12);
    energies.iter().map(|e| (e - e0).abs()).fold(0.0, f64::max) / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::{HarmonicPair, LennardJones};
    use mqmd_util::constants::Element;
    use mqmd_util::Vec3;

    fn lj_crystal() -> (AtomicSystem, LennardJones) {
        // A small FCC-ish cluster of "argon-like" LJ atoms near equilibrium.
        // Cutoff stays below half the (2a ≈ 19 Bohr) cell.
        let sigma = 6.0;
        let lj = LennardJones {
            epsilon: 4e-4,
            sigma,
            cutoff: 9.0,
        };
        let a = sigma * 2f64.powf(1.0 / 6.0) * 2f64.sqrt();
        let mut species = Vec::new();
        let mut positions = Vec::new();
        for cx in 0..2 {
            for cy in 0..2 {
                for cz in 0..2 {
                    for f in [
                        [0.0, 0.0, 0.0],
                        [0.0, 0.5, 0.5],
                        [0.5, 0.0, 0.5],
                        [0.5, 0.5, 0.0],
                    ] {
                        species.push(Element::Al);
                        positions.push(Vec3::new(
                            (cx as f64 + f[0]) * a,
                            (cy as f64 + f[1]) * a,
                            (cz as f64 + f[2]) * a,
                        ));
                    }
                }
            }
        }
        let cell = Vec3::splat(2.0 * a);
        (AtomicSystem::new(cell, species, positions), lj)
    }

    #[test]
    fn harmonic_dimer_oscillates_at_analytic_frequency() {
        // Two equal masses on a spring: ω = √(2k/m) (reduced mass m/2).
        let k = 0.1;
        let m = Element::H.mass_au();
        let mut field = HarmonicPair {
            k,
            r0: 2.0,
            cutoff: 8.0,
        };
        let mut sys = AtomicSystem::new(
            Vec3::splat(20.0),
            vec![Element::H, Element::H],
            vec![Vec3::splat(8.0), Vec3::new(10.2, 8.0, 8.0)], // stretched by 0.2
        );
        let omega = (2.0 * k / m).sqrt();
        let period = std::f64::consts::TAU / omega;
        let steps_per_period = 2000usize;
        let mut vv = VelocityVerlet::new(period / steps_per_period as f64);
        // After one full period the bond length returns to the start.
        let r_start = sys.distance(0, 1);
        vv.run(&mut sys, &mut field, steps_per_period);
        let r_end = sys.distance(0, 1);
        assert!((r_end - r_start).abs() < 1e-4, "{r_start} vs {r_end}");
        // After half a period it is compressed to r₀ − 0.2.
        let mut sys2 = AtomicSystem::new(
            Vec3::splat(20.0),
            vec![Element::H, Element::H],
            vec![Vec3::splat(8.0), Vec3::new(10.2, 8.0, 8.0)],
        );
        let mut vv2 = VelocityVerlet::new(period / steps_per_period as f64);
        vv2.run(&mut sys2, &mut field, steps_per_period / 2);
        assert!((sys2.distance(0, 1) - 1.8).abs() < 1e-3);
    }

    #[test]
    fn energy_conservation_lj() {
        let (mut sys, mut lj) = lj_crystal();
        let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(11);
        sys.thermalize(50.0, &mut rng);
        let mut vv = VelocityVerlet::new(20.0);
        let energies = vv.run(&mut sys, &mut lj, 400);
        let drift = energy_drift(&energies);
        assert!(drift < 1e-4, "energy drift {drift}");
    }

    #[test]
    fn time_reversibility() {
        let (mut sys, mut lj) = lj_crystal();
        let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(13);
        sys.thermalize(40.0, &mut rng);
        let start = sys.positions.clone();
        let mut vv = VelocityVerlet::new(20.0);
        vv.run(&mut sys, &mut lj, 100);
        reverse_velocities(&mut sys);
        vv.reset();
        vv.run(&mut sys, &mut lj, 100);
        for (a, b) in sys.positions.iter().zip(&start) {
            assert!((*a - *b).min_image(sys.cell).norm() < 1e-8);
        }
    }

    #[test]
    fn momentum_conservation() {
        let (mut sys, mut lj) = lj_crystal();
        let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(17);
        sys.thermalize(80.0, &mut rng);
        let p0: Vec3 = (0..sys.len())
            .map(|i| sys.velocities[i] * sys.mass(i))
            .sum();
        let mut vv = VelocityVerlet::new(20.0);
        vv.run(&mut sys, &mut lj, 200);
        let p1: Vec3 = (0..sys.len())
            .map(|i| sys.velocities[i] * sys.mass(i))
            .sum();
        assert!((p1 - p0).norm() < 1e-9);
    }

    #[test]
    fn smaller_timestep_conserves_better() {
        let build = || {
            let (mut sys, lj) = lj_crystal();
            let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(19);
            sys.thermalize(100.0, &mut rng);
            (sys, lj)
        };
        let (mut s1, mut lj1) = build();
        let (mut s2, mut lj2) = build();
        let d1 = energy_drift(&VelocityVerlet::new(40.0).run(&mut s1, &mut lj1, 100));
        let d2 = energy_drift(&VelocityVerlet::new(10.0).run(&mut s2, &mut lj2, 400));
        assert!(d2 < d1, "dt/4 should conserve better: {d2} vs {d1}");
    }
}
