//! Workload builders for the paper's benchmark systems.
//!
//! * SiC zinc-blende supercells — the weak-scaling workload (Fig 5, 64 atoms
//!   per core) and the FLOP/s measurement systems (Tables 1–2);
//! * CdSe (zinc-blende and amorphised) — the buffer-convergence study of
//!   Fig 7 (512 atoms in a 45.664 a.u. box, i.e. 4³ conventional cells of
//!   lattice constant 11.416 a.u.);
//! * LiAl B32 (Zintl) crystal — the seed lattice from which `mqmd-chem` cuts
//!   the LiₙAlₙ nanoparticles of the hydrogen-on-demand study (§6).

use crate::structure::AtomicSystem;
use mqmd_util::constants::Element;
use mqmd_util::{Vec3, Xoshiro256pp};

/// Zinc-blende lattice constant of SiC: 4.3596 Å ≈ 8.239 Bohr.
pub const SIC_LATTICE_BOHR: f64 = 8.239;

/// Zinc-blende lattice constant of CdSe chosen to match the paper's Fig 7
/// geometry: 512 atoms in a cubic box of 45.664 a.u. → a = 11.416 a.u.
pub const CDSE_LATTICE_BOHR: f64 = 11.416;

/// B32 (NaTl-type) lattice constant of LiAl: 6.37 Å ≈ 12.037 Bohr.
pub const LIAL_LATTICE_BOHR: f64 = 12.037;

/// FCC basis sites in fractional coordinates.
const FCC: [[f64; 3]; 4] = [
    [0.0, 0.0, 0.0],
    [0.0, 0.5, 0.5],
    [0.5, 0.0, 0.5],
    [0.5, 0.5, 0.0],
];

/// Builds an `ncx × ncy × ncz` supercell of a zinc-blende AB crystal with
/// conventional lattice constant `a` (8 atoms per conventional cell).
pub fn zincblende(
    a: f64,
    elem_a: Element,
    elem_b: Element,
    (ncx, ncy, ncz): (usize, usize, usize),
) -> AtomicSystem {
    assert!(ncx > 0 && ncy > 0 && ncz > 0);
    let cell = Vec3::new(ncx as f64 * a, ncy as f64 * a, ncz as f64 * a);
    let mut species = Vec::new();
    let mut positions = Vec::new();
    for cx in 0..ncx {
        for cy in 0..ncy {
            for cz in 0..ncz {
                let origin = Vec3::new(cx as f64, cy as f64, cz as f64) * a;
                for f in FCC {
                    species.push(elem_a);
                    positions.push(origin + Vec3::new(f[0], f[1], f[2]) * a);
                    species.push(elem_b);
                    positions.push(origin + Vec3::new(f[0] + 0.25, f[1] + 0.25, f[2] + 0.25) * a);
                }
            }
        }
    }
    AtomicSystem::new(cell, species, positions)
}

/// SiC zinc-blende supercell (the scaling workload).
pub fn sic_supercell(nc: (usize, usize, usize)) -> AtomicSystem {
    zincblende(SIC_LATTICE_BOHR, Element::Si, Element::C, nc)
}

/// CdSe zinc-blende supercell; `sic_supercell`'s analogue for Fig 7.
pub fn cdse_supercell(nc: (usize, usize, usize)) -> AtomicSystem {
    zincblende(CDSE_LATTICE_BOHR, Element::Cd, Element::Se, nc)
}

/// The paper's Fig 7 geometry: 512-atom CdSe in a 45.664 a.u. cubic box,
/// amorphised by Gaussian displacements of width `sigma` Bohr.
pub fn cdse_amorphous_512(sigma: f64, rng: &mut Xoshiro256pp) -> AtomicSystem {
    let mut s = cdse_supercell((4, 4, 4));
    debug_assert_eq!(s.len(), 512);
    amorphize(&mut s, sigma, rng);
    s
}

/// B32 (NaTl) LiAl supercell: Li and Al each occupy one of two
/// interpenetrating diamond sublattices (16 atoms per conventional cell).
pub fn lial_b32(nc: (usize, usize, usize)) -> AtomicSystem {
    let a = LIAL_LATTICE_BOHR;
    let (ncx, ncy, ncz) = nc;
    assert!(ncx > 0 && ncy > 0 && ncz > 0);
    let cell = Vec3::new(ncx as f64 * a, ncy as f64 * a, ncz as f64 * a);
    let mut species = Vec::new();
    let mut positions = Vec::new();
    for cx in 0..ncx {
        for cy in 0..ncy {
            for cz in 0..ncz {
                let origin = Vec3::new(cx as f64, cy as f64, cz as f64) * a;
                for f in FCC {
                    // Diamond sublattice A (Li): fcc + fcc offset by ¼¼¼.
                    for off in [[0.0, 0.0, 0.0], [0.25, 0.25, 0.25]] {
                        species.push(Element::Li);
                        positions.push(
                            origin + Vec3::new(f[0] + off[0], f[1] + off[1], f[2] + off[2]) * a,
                        );
                    }
                    // Diamond sublattice B (Al): shifted by ½½½.
                    for off in [[0.5, 0.5, 0.5], [0.75, 0.75, 0.75]] {
                        species.push(Element::Al);
                        positions.push(
                            origin + Vec3::new(f[0] + off[0], f[1] + off[1], f[2] + off[2]) * a,
                        );
                    }
                }
            }
        }
    }
    AtomicSystem::new(cell, species, positions)
}

/// Adds zero-mean Gaussian displacements of width `sigma` (Bohr) to every
/// atom — the cheap amorphisation used for the a-CdSe convergence study.
pub fn amorphize(system: &mut AtomicSystem, sigma: f64, rng: &mut Xoshiro256pp) {
    let cell = system.cell;
    for r in &mut system.positions {
        *r = (*r
            + Vec3::new(
                rng.normal_scaled(0.0, sigma),
                rng.normal_scaled(0.0, sigma),
                rng.normal_scaled(0.0, sigma),
            ))
        .wrap(cell);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sic_counts_and_stoichiometry() {
        let s = sic_supercell((2, 2, 2));
        assert_eq!(s.len(), 64); // 8 atoms × 8 cells
        assert_eq!(s.count(Element::Si), 32);
        assert_eq!(s.count(Element::C), 32);
    }

    #[test]
    fn paper_weak_scaling_granularity() {
        // 64 atoms per core means one 2×2×2-cell SiC block per core (Fig 5).
        let s = sic_supercell((2, 2, 2));
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn fig7_system_is_512_atoms_in_45_664_box() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let s = cdse_amorphous_512(0.3, &mut rng);
        assert_eq!(s.len(), 512);
        assert!((s.cell.x - 45.664).abs() < 1e-10);
        assert_eq!(s.count(Element::Cd), 256);
        assert_eq!(s.count(Element::Se), 256);
    }

    #[test]
    fn zincblende_nearest_neighbour_distance() {
        // In zinc blende the A–B nearest-neighbour distance is a·√3/4.
        let s = sic_supercell((2, 2, 2));
        let expect = SIC_LATTICE_BOHR * 3f64.sqrt() / 4.0;
        // Atom 0 is Si at origin; find its closest C.
        let mut dmin = f64::INFINITY;
        for j in 1..s.len() {
            if s.species[j] == Element::C {
                dmin = dmin.min(s.distance(0, j));
            }
        }
        assert!((dmin - expect).abs() < 1e-9);
    }

    #[test]
    fn lial_b32_counts() {
        let s = lial_b32((2, 2, 2));
        assert_eq!(s.len(), 128);
        assert_eq!(s.count(Element::Li), 64);
        assert_eq!(s.count(Element::Al), 64);
    }

    #[test]
    fn lial_b32_no_overlapping_sites() {
        let s = lial_b32((1, 1, 1));
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                assert!(
                    s.distance(i, j) > 1.0,
                    "atoms {i},{j} too close: {}",
                    s.distance(i, j)
                );
            }
        }
    }

    #[test]
    fn amorphize_moves_atoms_but_keeps_count() {
        let mut s = sic_supercell((1, 1, 1));
        let before = s.positions.clone();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        amorphize(&mut s, 0.2, &mut rng);
        assert_eq!(s.len(), 8);
        let moved = s
            .positions
            .iter()
            .zip(&before)
            .filter(|(a, b)| (**a - **b).min_image(s.cell).norm() > 1e-6)
            .count();
        assert_eq!(moved, 8);
    }
}
