//! Linked-cell neighbour list.
//!
//! O(N) construction: the cell is binned into boxes at least as large as the
//! cutoff; each atom only tests the 27 surrounding boxes. This backs the
//! classical force fields, the surface detector in `mqmd-chem`, and the
//! short-range part of the Ewald ion–ion energy in `mqmd-dft`.

use crate::structure::AtomicSystem;
use mqmd_util::Vec3;

/// A half neighbour list: every unordered pair within the cutoff appears
/// exactly once as `(i, j)` with `i < j`.
#[derive(Clone, Debug)]
pub struct NeighborList {
    cutoff: f64,
    pairs: Vec<(u32, u32)>,
}

impl NeighborList {
    /// Builds the list for the current positions.
    ///
    /// # Panics
    /// Panics if the cutoff exceeds half the smallest cell length (minimum
    /// image would be ambiguous).
    pub fn build(system: &AtomicSystem, cutoff: f64) -> Self {
        assert!(cutoff > 0.0);
        let min_l = system.cell.x.min(system.cell.y).min(system.cell.z);
        assert!(
            cutoff <= 0.5 * min_l + 1e-12,
            "cutoff {cutoff} exceeds half the smallest cell length {min_l}"
        );
        let n = system.len();
        // Bin counts per axis (at least 1, boxes ≥ cutoff when ≥ 3 bins).
        let nbx = ((system.cell.x / cutoff).floor() as usize).max(1);
        let nby = ((system.cell.y / cutoff).floor() as usize).max(1);
        let nbz = ((system.cell.z / cutoff).floor() as usize).max(1);

        // With fewer than 3 bins along an axis the 27-stencil double-counts
        // periodic images; fall back to the O(N²) scan (small systems only).
        if nbx < 3 || nby < 3 || nbz < 3 {
            let mut pairs = Vec::new();
            let c2 = cutoff * cutoff;
            for i in 0..n {
                for j in (i + 1)..n {
                    if system.displacement(i, j).norm_sqr() <= c2 {
                        pairs.push((i as u32, j as u32));
                    }
                }
            }
            return Self { cutoff, pairs };
        }

        let bin_of = |r: Vec3| -> (usize, usize, usize) {
            let bx = ((r.x / system.cell.x * nbx as f64) as usize).min(nbx - 1);
            let by = ((r.y / system.cell.y * nby as f64) as usize).min(nby - 1);
            let bz = ((r.z / system.cell.z * nbz as f64) as usize).min(nbz - 1);
            (bx, by, bz)
        };
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); nbx * nby * nbz];
        for (i, &r) in system.positions.iter().enumerate() {
            let (bx, by, bz) = bin_of(r);
            bins[(bx * nby + by) * nbz + bz].push(i as u32);
        }

        let c2 = cutoff * cutoff;
        let mut pairs = Vec::new();
        for bx in 0..nbx {
            for by in 0..nby {
                for bz in 0..nbz {
                    let home = &bins[(bx * nby + by) * nbz + bz];
                    for dz in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                let ox = (bx as i64 + dx).rem_euclid(nbx as i64) as usize;
                                let oy = (by as i64 + dy).rem_euclid(nby as i64) as usize;
                                let oz = (bz as i64 + dz).rem_euclid(nbz as i64) as usize;
                                let other_idx = (ox * nby + oy) * nbz + oz;
                                let home_idx = (bx * nby + by) * nbz + bz;
                                if other_idx < home_idx {
                                    continue; // each box pair handled once
                                }
                                let other = &bins[other_idx];
                                if other_idx == home_idx {
                                    for (a, &i) in home.iter().enumerate() {
                                        for &j in &home[a + 1..] {
                                            if system
                                                .displacement(i as usize, j as usize)
                                                .norm_sqr()
                                                <= c2
                                            {
                                                pairs.push((i.min(j), i.max(j)));
                                            }
                                        }
                                    }
                                } else {
                                    for &i in home {
                                        for &j in other {
                                            if system
                                                .displacement(i as usize, j as usize)
                                                .norm_sqr()
                                                <= c2
                                            {
                                                pairs.push((i.min(j), i.max(j)));
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        Self { cutoff, pairs }
    }

    /// The cutoff the list was built with.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// All unordered pairs `(i, j)` with `i < j` within the cutoff.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pair is within the cutoff.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Per-atom coordination numbers.
    pub fn coordination(&self, n_atoms: usize) -> Vec<usize> {
        let mut z = vec![0usize; n_atoms];
        for &(i, j) in &self.pairs {
            z[i as usize] += 1;
            z[j as usize] += 1;
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::sic_supercell;
    use mqmd_util::constants::Element;

    fn brute_force(system: &AtomicSystem, cutoff: f64) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..system.len() {
            for j in (i + 1)..system.len() {
                if system.distance(i, j) <= cutoff {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_on_crystal() {
        let s = sic_supercell((3, 3, 3));
        for cutoff in [2.0, 4.0, 6.0] {
            let list = NeighborList::build(&s, cutoff);
            let brute = brute_force(&s, cutoff);
            assert_eq!(list.pairs(), brute.as_slice(), "cutoff {cutoff}");
        }
    }

    #[test]
    fn matches_brute_force_on_random_gas() {
        let mut rng = mqmd_util::Xoshiro256pp::seed_from_u64(9);
        let n = 200;
        let cell = Vec3::splat(15.0);
        let positions: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.uniform_in(0.0, 15.0),
                    rng.uniform_in(0.0, 15.0),
                    rng.uniform_in(0.0, 15.0),
                )
            })
            .collect();
        let s = AtomicSystem::new(cell, vec![Element::H; n], positions);
        let list = NeighborList::build(&s, 3.0);
        assert_eq!(list.pairs(), brute_force(&s, 3.0).as_slice());
    }

    #[test]
    fn small_cell_fallback_path() {
        // Cell barely twice the cutoff: exercises the O(N²) fallback.
        let s = sic_supercell((1, 1, 1));
        let cutoff = 4.0;
        let list = NeighborList::build(&s, cutoff);
        assert_eq!(list.pairs(), brute_force(&s, cutoff).as_slice());
    }

    #[test]
    fn zincblende_coordination_is_four() {
        let s = sic_supercell((2, 2, 2));
        // First-shell cutoff: between a√3/4 ≈ 3.57 and the second shell a/√2 ≈ 5.8.
        let list = NeighborList::build(&s, 4.5);
        let z = list.coordination(s.len());
        for (i, &zi) in z.iter().enumerate() {
            assert_eq!(zi, 4, "atom {i} has coordination {zi}");
        }
    }

    #[test]
    #[should_panic]
    fn oversized_cutoff_rejected() {
        let s = sic_supercell((1, 1, 1));
        NeighborList::build(&s, 6.0);
    }
}
