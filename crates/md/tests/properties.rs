//! Property-based tests of the MD engine: neighbour-list correctness on
//! random gases, force-field gradient consistency, thermalisation
//! invariants, and compression round trips.

use mqmd_md::builders::amorphize;
use mqmd_md::forcefield::{ForceField, LennardJones};
use mqmd_md::io::{read_varint, write_varint, CompressedFrame};
use mqmd_md::neighbor::NeighborList;
use mqmd_md::AtomicSystem;
use mqmd_util::constants::Element;
use mqmd_util::{Vec3, Xoshiro256pp};
use proptest::prelude::*;

fn random_gas(n: usize, l: f64, seed: u64) -> AtomicSystem {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let positions: Vec<Vec3> = (0..n)
        .map(|_| {
            Vec3::new(
                rng.uniform_in(0.0, l),
                rng.uniform_in(0.0, l),
                rng.uniform_in(0.0, l),
            )
        })
        .collect();
    AtomicSystem::new(Vec3::splat(l), vec![Element::Al; n], positions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn neighbor_list_matches_brute_force(n in 2usize..80, seed in any::<u64>(), cut_frac in 0.1..0.45f64) {
        let l = 14.0;
        let sys = random_gas(n, l, seed);
        let cutoff = cut_frac * l;
        let list = NeighborList::build(&sys, cutoff);
        let mut brute = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if sys.distance(i, j) <= cutoff {
                    brute.push((i as u32, j as u32));
                }
            }
        }
        prop_assert_eq!(list.pairs(), brute.as_slice());
    }

    #[test]
    fn lj_forces_sum_to_zero(n in 2usize..40, seed in any::<u64>()) {
        let sys = random_gas(n, 16.0, seed);
        let mut lj = LennardJones { epsilon: 1e-3, sigma: 3.0, cutoff: 7.0 };
        let out = lj.compute(&sys);
        let total: Vec3 = out.forces.iter().copied().sum();
        // Newton's third law: cancellation is exact pairwise, so the sum is
        // bounded by float round-off relative to the largest force (random
        // gases can have near-overlapping atoms with enormous repulsion).
        let max_force = out.forces.iter().map(|f| f.norm()).fold(0.0, f64::max);
        prop_assert!(total.norm() <= 1e-12 * (1.0 + max_force) * n as f64);
    }

    #[test]
    fn thermalize_hits_any_target(t in 1.0..5000.0f64, seed in any::<u64>()) {
        let mut sys = random_gas(32, 20.0, seed);
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xABCD);
        sys.thermalize(t, &mut rng);
        prop_assert!((sys.temperature() - t).abs() < 1e-6 * t);
        let p: Vec3 = (0..sys.len()).map(|i| sys.velocities[i] * sys.mass(i)).sum();
        prop_assert!(p.norm() < 1e-6);
    }

    #[test]
    fn varint_round_trips(values in prop::collection::vec(any::<u64>(), 0..40)) {
        let mut buf = bytes::BytesMut::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for &v in &values {
            prop_assert_eq!(read_varint(&mut bytes).unwrap(), v);
        }
    }

    #[test]
    fn compression_round_trip_random_systems(n in 1usize..120, bits in 8u32..18, seed in any::<u64>()) {
        let sys = random_gas(n, 25.0, seed);
        let frame = CompressedFrame::compress(&sys, bits);
        let back = frame.decompress().unwrap();
        prop_assert_eq!(back.len(), n);
        let tol = frame.max_quantisation_error() * 1.0001;
        for (a, b) in back.iter().zip(&sys.positions) {
            prop_assert!((*a - *b).min_image(sys.cell).norm() <= tol);
        }
    }

    #[test]
    fn amorphize_preserves_atom_count_and_cell(sigma in 0.0..1.0f64, seed in any::<u64>()) {
        let mut sys = random_gas(20, 12.0, seed);
        let cell = sys.cell;
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        amorphize(&mut sys, sigma, &mut rng);
        prop_assert_eq!(sys.len(), 20);
        prop_assert_eq!(sys.cell, cell);
        for r in &sys.positions {
            prop_assert!(r.x >= 0.0 && r.x < cell.x);
        }
    }
}
